// Package mem models the memory system of a WN-class energy-harvesting
// device: a non-volatile code region (flash/FRAM), a non-volatile data
// region (FRAM), and a volatile SRAM region.
//
// The memory tracks, per checkpoint interval, the set of addresses read and
// written. The Clank-style runtime uses this to detect idempotency
// violations (a write to non-volatile memory at an address previously read
// since the last checkpoint), which force a checkpoint before the write may
// proceed so that re-execution after a power outage observes consistent
// state.
//
// Tracking is implemented as epoch-tagged word-granularity shadow arrays
// over the FRAM data region, mirroring the constant-time hardware filter
// Clank describes: a word is in the current read-first (or written) set iff
// its shadow stamp equals the current epoch, and clearing both sets at a
// checkpoint is a single epoch increment.
package mem

import (
	"bytes"
	"fmt"
)

// Region boundaries. Addresses are 32-bit; each region is sized at
// construction time.
const (
	CodeBase = 0x0000_0000 // non-volatile instruction memory
	DataBase = 0x1000_0000 // non-volatile FRAM data
	SRAMBase = 0x2000_0000 // volatile SRAM (stack, scratch)
)

// AccessError reports an out-of-range or misaligned access.
type AccessError struct {
	Addr  uint32
	Size  int
	Write bool
	Msg   string
}

func (e *AccessError) Error() string {
	kind := "read"
	if e.Write {
		kind = "write"
	}
	return fmt.Sprintf("mem: invalid %d-byte %s at %#08x: %s", e.Size, kind, e.Addr, e.Msg)
}

// Config sizes the memory regions.
type Config struct {
	CodeBytes int // non-volatile instruction memory
	DataBytes int // non-volatile FRAM data memory
	SRAMBytes int // volatile SRAM
}

// DefaultConfig returns region sizes comfortable for every Table I benchmark
// at paper scale (a 128x128 16-bit image plus 32-bit accumulator planes).
func DefaultConfig() Config {
	return Config{
		CodeBytes: 64 << 10,
		DataBytes: 512 << 10,
		SRAMBytes: 16 << 10,
	}
}

// Memory is the device memory. It is not safe for concurrent use; each
// simulated device owns one Memory.
type Memory struct {
	cfg  Config
	code []byte
	data []byte
	sram []byte

	// Idempotency tracking for the Clank-style runtime: one epoch stamp per
	// word of the FRAM data region. A word belongs to the current interval's
	// read-first (resp. written) set iff its stamp equals epoch.
	trackAccess bool
	epoch       uint32
	readEpoch   []uint32 // stamped when read before any write this epoch
	writeEpoch  []uint32 // stamped when written this epoch

	// Dirty-extent tracking for the lockstep fault injector: the byte
	// extents written since the last ResetDirty, maintained O(1) per store.
	// Forked devices use them to copy and compare only the touched windows
	// instead of the full (hundreds-of-KB) region set. Off by default;
	// stores take the precise path while enabled.
	trackDirty bool
	dirty      DirtyExtent
	sramHigh   uint32 // high-water mark of SRAM writes since SetDirtyTracking

	// Cached region resolution: consecutive accesses to the same region
	// skip the backing switch. curNV is 1 when the cached region is the
	// non-volatile data region (so the store fast path can bump NVWrites
	// with an add instead of a compare).
	curRegion []byte
	curBase   uint32
	curNV     uint64

	progLen int // bytes of the loaded program image (decode-cache extent)

	// Access statistics (since construction or ResetStats).
	Reads    uint64
	Writes   uint64
	NVWrites uint64
}

// New builds a Memory with the given region sizes.
func New(cfg Config) *Memory {
	// One backing slab for all three regions: a single allocation instead of
	// three, which matters for harnesses that build thousands of devices.
	// Full-capacity slicing keeps the regions from growing into each other.
	cb, db := cfg.CodeBytes, cfg.DataBytes
	slab := make([]byte, cb+db+cfg.SRAMBytes)
	return &Memory{
		cfg:   cfg,
		code:  slab[:cb:cb],
		data:  slab[cb : cb+db : cb+db],
		sram:  slab[cb+db:],
		epoch: 1,
		dirty: emptyDirty(),
	}
}

// DirtyExtent records which parts of a memory were written since the last
// ResetDirty: half-open byte extents [Lo, Hi) within the data and SRAM
// regions, and a flag for any write into the code region (self-modifying
// programs are rare enough that byte precision there buys nothing). The
// zero extent (Lo >= Hi) is empty.
type DirtyExtent struct {
	DataLo, DataHi uint32
	SRAMLo, SRAMHi uint32
	Code           bool
}

func emptyDirty() DirtyExtent {
	return DirtyExtent{DataLo: ^uint32(0), SRAMLo: ^uint32(0)}
}

// Union widens the extent to cover o as well.
func (e DirtyExtent) Union(o DirtyExtent) DirtyExtent {
	if o.DataLo < e.DataLo {
		e.DataLo = o.DataLo
	}
	if o.DataHi > e.DataHi {
		e.DataHi = o.DataHi
	}
	if o.SRAMLo < e.SRAMLo {
		e.SRAMLo = o.SRAMLo
	}
	if o.SRAMHi > e.SRAMHi {
		e.SRAMHi = o.SRAMHi
	}
	e.Code = e.Code || o.Code
	return e
}

// SetDirtyTracking enables or disables dirty-extent tracking and resets the
// extents and the SRAM high-water mark. While enabled, stores take the
// precise (non-inlined) path, so harnesses leave it off; the lockstep fault
// injector enables it on its trunk and forked devices only.
func (m *Memory) SetDirtyTracking(on bool) {
	m.trackDirty = on
	m.dirty = emptyDirty()
	m.sramHigh = 0
}

// Dirty returns the extents written since the last ResetDirty.
func (m *Memory) Dirty() DirtyExtent { return m.dirty }

// ResetDirty empties the dirty extents (the SRAM high-water mark persists).
func (m *Memory) ResetDirty() { m.dirty = emptyDirty() }

// noteDirty widens the dirty extents for a store of size bytes at addr.
func (m *Memory) noteDirty(addr uint32, size int) {
	switch {
	case inRegion(addr, DataBase, len(m.data)):
		off := addr - DataBase
		if off < m.dirty.DataLo {
			m.dirty.DataLo = off
		}
		if end := off + uint32(size); end > m.dirty.DataHi {
			m.dirty.DataHi = end
		}
	case inRegion(addr, SRAMBase, len(m.sram)):
		off := addr - SRAMBase
		if off < m.dirty.SRAMLo {
			m.dirty.SRAMLo = off
		}
		if end := off + uint32(size); end > m.dirty.SRAMHi {
			m.dirty.SRAMHi = end
		}
		if end := off + uint32(size); end > m.sramHigh {
			m.sramHigh = end
		}
	default:
		m.dirty.Code = true
	}
}

// CopyDirty copies src's bytes within ext into m, plus the access counters.
// It is the incremental form of Clone for a memory that already matches src
// everywhere outside ext: the lockstep injector re-syncs its reusable fork
// with it in O(|ext|). Tracking stamps are deliberately not copied — the
// caller's next ClearAccessSets (every restore path issues one) makes any
// stale stamps unreadable, because m's epoch only ever moves forward.
func (m *Memory) CopyDirty(src *Memory, ext DirtyExtent) {
	if ext.DataLo < ext.DataHi {
		copy(m.data[ext.DataLo:ext.DataHi], src.data[ext.DataLo:ext.DataHi])
	}
	if ext.SRAMLo < ext.SRAMHi {
		copy(m.sram[ext.SRAMLo:ext.SRAMHi], src.sram[ext.SRAMLo:ext.SRAMHi])
	}
	if ext.Code {
		copy(m.code, src.code)
	}
	m.sramHigh = max(m.sramHigh, src.sramHigh)
	m.Reads, m.Writes, m.NVWrites = src.Reads, src.Writes, src.NVWrites
}

// EqualWithin reports whether m and o hold identical bytes inside ext. For
// two memories known to be equal outside ext (a fork and its trunk), this
// is a full state-equality test at O(|ext|) cost.
func (m *Memory) EqualWithin(o *Memory, ext DirtyExtent) bool {
	if ext.DataLo < ext.DataHi && !bytes.Equal(m.data[ext.DataLo:ext.DataHi], o.data[ext.DataLo:ext.DataHi]) {
		return false
	}
	if ext.SRAMLo < ext.SRAMHi && !bytes.Equal(m.sram[ext.SRAMLo:ext.SRAMHi], o.sram[ext.SRAMLo:ext.SRAMHi]) {
		return false
	}
	if ext.Code && !bytes.Equal(m.code, o.code) {
		return false
	}
	return true
}

// Wipe returns the memory to its post-New state — all regions zeroed,
// tracking off, counters cleared — while reusing the backing storage.
// Harnesses that simulate many programs back to back use it to avoid
// re-allocating the full region set per program.
func (m *Memory) Wipe() {
	clear(m.code)
	clear(m.data)
	clear(m.sram)
	m.trackAccess = false
	m.epoch = 1
	m.readEpoch, m.writeEpoch = nil, nil
	m.trackDirty = false
	m.dirty = emptyDirty()
	m.sramHigh = 0
	m.curRegion, m.curBase, m.curNV = nil, 0, 0
	m.progLen = 0
	m.Reads, m.Writes, m.NVWrites = 0, 0, 0
}

// Config returns the sizes the memory was built with.
func (m *Memory) Config() Config { return m.cfg }

// Clone deep-copies the memory: region contents, tracking shadow state
// (epoch stamps included, so a cloned Clank device sees the same read/write
// sets), program extent, and access counters. The region-resolution cache
// starts cold — it re-warms on the clone's first access. The fault injector
// forks a mid-run device at every kill boundary with it.
func (m *Memory) Clone() *Memory {
	n := New(m.cfg)
	copy(n.code, m.code)
	copy(n.data, m.data)
	copy(n.sram, m.sram)
	n.trackAccess = m.trackAccess
	n.epoch = m.epoch
	if m.readEpoch != nil {
		n.readEpoch = append([]uint32(nil), m.readEpoch...)
		n.writeEpoch = append([]uint32(nil), m.writeEpoch...)
	}
	n.progLen = m.progLen
	n.trackDirty = m.trackDirty
	n.dirty = m.dirty
	n.sramHigh = m.sramHigh
	n.Reads, n.Writes, n.NVWrites = m.Reads, m.Writes, m.NVWrites
	return n
}

// StateEqual reports whether two memories hold identical bytes in every
// region. Tracking shadow state and access counters are deliberately
// excluded: they influence checkpoint placement and energy accounting, never
// the values a deterministic continuation computes. The lockstep fault
// injector uses this as its re-convergence test.
func (m *Memory) StateEqual(o *Memory) bool {
	return bytes.Equal(m.code, o.code) && bytes.Equal(m.data, o.data) && bytes.Equal(m.sram, o.sram)
}

// ProgramImage returns a copy of the loaded program image (the progLen-byte
// prefix of code memory). The CPU's translation backend hands it to
// wncheck.ImageCFG so superblock extents come from the same CFG the static
// verifier reasons about.
func (m *Memory) ProgramImage() []byte {
	return append([]byte(nil), m.code[:m.progLen]...)
}

// SetTracking enables or disables read/write-set tracking. The Clank runtime
// enables it; the NVP runtime leaves it off. The shadow arrays (one epoch
// stamp per data word) are allocated on first enable, so untracked devices —
// continuous-power harnesses, NVP — never pay for them.
func (m *Memory) SetTracking(on bool) {
	m.trackAccess = on
	if on && m.readEpoch == nil {
		words := (m.cfg.DataBytes + 3) / 4
		m.readEpoch = make([]uint32, words)
		m.writeEpoch = make([]uint32, words)
	}
}

// ClearAccessSets empties the tracked read/write sets. Called at every
// checkpoint boundary. It is a single epoch increment: stamps from earlier
// epochs no longer match, so both sets are empty in O(1).
func (m *Memory) ClearAccessSets() {
	m.epoch++
	if m.epoch == 0 {
		// The epoch counter rolled over; stamps left behind by the previous
		// era would alias freshly issued epochs. Scrub them once per 2^32
		// checkpoints and restart at 1 (0 marks "never touched").
		clear(m.readEpoch)
		clear(m.writeEpoch)
		m.epoch = 1
	}
}

// WouldViolate reports whether a store of size bytes at addr would be an
// idempotency violation: a write to non-volatile data that was read (before
// being written) since the last checkpoint. Re-executing the interval after
// an outage would then read the new value instead of the original one.
func (m *Memory) WouldViolate(addr uint32, size int) bool {
	if !m.trackAccess || !inRegion(addr, DataBase, len(m.data)) {
		return false
	}
	first, last := coveredWords(addr, size)
	for wa := first; wa <= last; wa += 4 {
		wi := (wa - DataBase) >> 2
		if int(wi) >= len(m.readEpoch) {
			break // the store itself will fault past the region end
		}
		if m.readEpoch[wi] == m.epoch {
			return true
		}
	}
	return false
}

// noteWriteSlow handles the non-volatile half of noteWrite out of line so
// the SRAM-store fast path stays inlinable.
func (m *Memory) noteWriteSlow(addr uint32, size int) {
	m.NVWrites++
	if m.trackAccess {
		m.trackWrite(addr, size)
	}
}

// The Try* accessors below are the interpreter's single-call fast path:
// each is small enough for the compiler to inline into the execution loop,
// hitting the cached region directly. They fail (returning ok=false) on a
// region-cache miss, a boundary or alignment issue, or when access tracking
// is enabled — the caller then routes through the full Load*/Store* methods,
// which handle every case and produce precise errors. A Try* call that
// fails performs no access and updates no statistics.

// TryLoadWord is the inlinable word-load fast path.
func (m *Memory) TryLoadWord(addr uint32) (uint32, bool) {
	b := m.curRegion
	off := addr - m.curBase
	if uint64(off)+4 > uint64(len(b)) || addr&3 != 0 || m.trackAccess {
		return 0, false
	}
	m.Reads++
	return uint32(b[off]) | uint32(b[off+1])<<8 | uint32(b[off+2])<<16 | uint32(b[off+3])<<24, true
}

// TryLoadHalf is the inlinable halfword-load fast path.
func (m *Memory) TryLoadHalf(addr uint32) (uint32, bool) {
	b := m.curRegion
	off := addr - m.curBase
	if uint64(off)+2 > uint64(len(b)) || addr&1 != 0 || m.trackAccess {
		return 0, false
	}
	m.Reads++
	return uint32(b[off]) | uint32(b[off+1])<<8, true
}

// TryLoadByte is the inlinable byte-load fast path.
func (m *Memory) TryLoadByte(addr uint32) (uint32, bool) {
	b := m.curRegion
	off := addr - m.curBase
	if off >= uint32(len(b)) || m.trackAccess {
		return 0, false
	}
	m.Reads++
	return uint32(b[off]), true
}

// TryStoreWord is the inlinable word-store fast path.
func (m *Memory) TryStoreWord(addr uint32, v uint32) bool {
	b := m.curRegion
	off := addr - m.curBase
	if uint64(off)+4 > uint64(len(b)) || addr&3 != 0 || m.trackAccess || m.trackDirty {
		return false
	}
	m.Writes++
	m.NVWrites += m.curNV
	b[off], b[off+1], b[off+2], b[off+3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	return true
}

// TryStoreHalf is the inlinable halfword-store fast path.
func (m *Memory) TryStoreHalf(addr uint32, v uint32) bool {
	b := m.curRegion
	off := addr - m.curBase
	if uint64(off)+2 > uint64(len(b)) || addr&1 != 0 || m.trackAccess || m.trackDirty {
		return false
	}
	m.Writes++
	m.NVWrites += m.curNV
	b[off], b[off+1] = byte(v), byte(v>>8)
	return true
}

// TryStoreByte is the inlinable byte-store fast path.
func (m *Memory) TryStoreByte(addr uint32, v uint32) bool {
	b := m.curRegion
	off := addr - m.curBase
	if off >= uint32(len(b)) || m.trackAccess || m.trackDirty {
		return false
	}
	m.Writes++
	m.NVWrites += m.curNV
	b[off] = byte(v)
	return true
}

// trackRead stamps the covered data words as read-first unless they were
// already written this epoch. Callers have validated the access, so word
// indices are in range.
func (m *Memory) trackRead(addr uint32, size int) {
	if !inRegion(addr, DataBase, len(m.data)) {
		return
	}
	first, last := coveredWords(addr, size)
	for wa := first; wa <= last; wa += 4 {
		wi := (wa - DataBase) >> 2
		if m.writeEpoch[wi] != m.epoch {
			m.readEpoch[wi] = m.epoch
		}
	}
}

// trackWrite stamps the covered data words as written this epoch.
func (m *Memory) trackWrite(addr uint32, size int) {
	first, last := coveredWords(addr, size)
	for wa := first; wa <= last; wa += 4 {
		m.writeEpoch[(wa-DataBase)>>2] = m.epoch
	}
}

// coveredWords bounds the word-aligned addresses a size-byte access touches:
// every word in [first, last], stepping by 4. An access contained in one
// word has first == last, so callers visit each word exactly once.
func coveredWords(addr uint32, size int) (first, last uint32) {
	return addr &^ 3, (addr + uint32(size) - 1) &^ 3
}

func inRegion(addr uint32, base uint32, size int) bool {
	return addr >= base && addr < base+uint32(size)
}

// backing returns the byte slice and offset for an access, or an error. The
// region resolved by the previous access is cached: consecutive accesses to
// the same region (the overwhelmingly common case in the interpreter loop)
// skip the switch. The body is small enough to inline into the Load*/Store*
// helpers; misses and boundary cases fall through to backingSlow.
func (m *Memory) backing(addr uint32, size int, write bool) ([]byte, uint32, error) {
	region := m.curRegion
	off := addr - m.curBase
	if n := uint32(len(region)); off < n && n-off >= uint32(size) && addr&(uint32(size)-1) == 0 {
		return region, off, nil
	}
	return m.backingSlow(addr, size, write)
}

// backingSlow re-resolves the region on a cache miss and builds precise
// errors for unmapped, out-of-bounds, and misaligned accesses.
func (m *Memory) backingSlow(addr uint32, size int, write bool) ([]byte, uint32, error) {
	region, base := m.curRegion, m.curBase
	off := addr - base
	if region == nil || off >= uint32(len(region)) {
		switch {
		case inRegion(addr, DataBase, len(m.data)):
			region, base = m.data, DataBase
		case inRegion(addr, SRAMBase, len(m.sram)):
			region, base = m.sram, SRAMBase
		case inRegion(addr, CodeBase, len(m.code)):
			region, base = m.code, CodeBase
		default:
			return nil, 0, &AccessError{Addr: addr, Size: size, Write: write, Msg: "unmapped"}
		}
		m.curRegion, m.curBase = region, base
		m.curNV = 0
		if base == DataBase {
			m.curNV = 1
		}
		off = addr - base
	}
	if int(off)+size > len(region) {
		return nil, 0, &AccessError{Addr: addr, Size: size, Write: write, Msg: "past end of region"}
	}
	if uint32(size) > 1 && addr%uint32(size) != 0 {
		return nil, 0, &AccessError{Addr: addr, Size: size, Write: write, Msg: "misaligned"}
	}
	return region, off, nil
}

// LoadWord reads a 32-bit little-endian word.
func (m *Memory) LoadWord(addr uint32) (uint32, error) {
	b, off, err := m.backing(addr, 4, false)
	if err != nil {
		return 0, err
	}
	m.Reads++
	if m.trackAccess {
		m.trackRead(addr, 4)
	}
	return uint32(b[off]) | uint32(b[off+1])<<8 | uint32(b[off+2])<<16 | uint32(b[off+3])<<24, nil
}

// LoadHalf reads a 16-bit little-endian halfword (zero-extended).
func (m *Memory) LoadHalf(addr uint32) (uint32, error) {
	b, off, err := m.backing(addr, 2, false)
	if err != nil {
		return 0, err
	}
	m.Reads++
	if m.trackAccess {
		m.trackRead(addr, 2)
	}
	return uint32(b[off]) | uint32(b[off+1])<<8, nil
}

// LoadByte reads one byte (zero-extended).
func (m *Memory) LoadByte(addr uint32) (uint32, error) {
	b, off, err := m.backing(addr, 1, false)
	if err != nil {
		return 0, err
	}
	m.Reads++
	if m.trackAccess {
		m.trackRead(addr, 1)
	}
	return uint32(b[off]), nil
}

// StoreWord writes a 32-bit little-endian word.
func (m *Memory) StoreWord(addr uint32, v uint32) error {
	b, off, err := m.backing(addr, 4, true)
	if err != nil {
		return err
	}
	m.Writes++
	if inRegion(addr, DataBase, len(m.data)) {
		m.noteWriteSlow(addr, 4)
	}
	if m.trackDirty {
		m.noteDirty(addr, 4)
	}
	b[off], b[off+1], b[off+2], b[off+3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	return nil
}

// StoreHalf writes a 16-bit little-endian halfword.
func (m *Memory) StoreHalf(addr uint32, v uint32) error {
	b, off, err := m.backing(addr, 2, true)
	if err != nil {
		return err
	}
	m.Writes++
	if inRegion(addr, DataBase, len(m.data)) {
		m.noteWriteSlow(addr, 2)
	}
	if m.trackDirty {
		m.noteDirty(addr, 2)
	}
	b[off], b[off+1] = byte(v), byte(v>>8)
	return nil
}

// StoreByte writes one byte.
func (m *Memory) StoreByte(addr uint32, v uint32) error {
	b, off, err := m.backing(addr, 1, true)
	if err != nil {
		return err
	}
	m.Writes++
	if inRegion(addr, DataBase, len(m.data)) {
		m.noteWriteSlow(addr, 1)
	}
	if m.trackDirty {
		m.noteDirty(addr, 1)
	}
	b[off] = byte(v)
	return nil
}

// FetchWord reads an instruction word without touching access statistics or
// tracking (instruction fetch is from non-volatile code memory).
func (m *Memory) FetchWord(addr uint32) (uint32, error) {
	b, off, err := m.backing(addr, 4, false)
	if err != nil {
		return 0, err
	}
	return uint32(b[off]) | uint32(b[off+1])<<8 | uint32(b[off+2])<<16 | uint32(b[off+3])<<24, nil
}

// LoadProgram copies an encoded program image into code memory at CodeBase.
func (m *Memory) LoadProgram(image []byte) error {
	if len(image) > len(m.code) {
		return fmt.Errorf("mem: program image (%d bytes) exceeds code memory (%d bytes)", len(image), len(m.code))
	}
	clear(m.code)
	copy(m.code, image)
	m.progLen = len(image)
	return nil
}

// ProgramBytes returns the length of the most recently loaded program image.
// The CPU's decode cache only decodes this prefix of code memory; the rest
// is zeroed by LoadProgram and shares a single invalid-word sentinel.
func (m *Memory) ProgramBytes() int { return m.progLen }

// WriteData bulk-copies bytes into the non-volatile data region at addr,
// bypassing tracking. Used by harnesses to install benchmark inputs.
func (m *Memory) WriteData(addr uint32, b []byte) error {
	if !inRegion(addr, DataBase, len(m.data)) || int(addr-DataBase)+len(b) > len(m.data) {
		return &AccessError{Addr: addr, Size: len(b), Write: true, Msg: "bulk write out of data region"}
	}
	if m.trackDirty && len(b) > 0 {
		m.noteDirty(addr, len(b))
	}
	copy(m.data[addr-DataBase:], b)
	return nil
}

// ReadData bulk-copies len(b) bytes out of the non-volatile data region,
// bypassing tracking. Used by harnesses to extract benchmark outputs.
func (m *Memory) ReadData(addr uint32, b []byte) error {
	if !inRegion(addr, DataBase, len(m.data)) || int(addr-DataBase)+len(b) > len(m.data) {
		return &AccessError{Addr: addr, Size: len(b), Msg: "bulk read out of data region"}
	}
	copy(b, m.data[addr-DataBase:])
	return nil
}

// PowerLoss models a power outage: volatile SRAM contents are destroyed.
// Non-volatile code and data regions persist, as do the tracking shadow
// arrays — the runtime decides when to reset tracking (ClearAccessSets at
// restore), mirroring Clank's non-volatile filter state.
func (m *Memory) PowerLoss() {
	if m.trackDirty {
		// Every SRAM byte written since tracking began is bounded by the
		// high-water mark, and tracking starts on a zeroed region, so only
		// [0, sramHigh) can change — clear and mark exactly that window.
		if m.sramHigh > 0 {
			clear(m.sram[:m.sramHigh])
			if m.dirty.SRAMLo != 0 {
				m.dirty.SRAMLo = 0
			}
			if m.sramHigh > m.dirty.SRAMHi {
				m.dirty.SRAMHi = m.sramHigh
			}
		}
		return
	}
	clear(m.sram)
}

// ZeroData clears the whole non-volatile data region. Harnesses call it
// between benchmark invocations.
func (m *Memory) ZeroData() {
	clear(m.data)
	if m.trackDirty {
		m.dirty.DataLo = 0
		m.dirty.DataHi = uint32(len(m.data))
	}
}

// ResetStats zeroes the access counters.
func (m *Memory) ResetStats() {
	m.Reads, m.Writes, m.NVWrites = 0, 0, 0
}
