package faultinject

import (
	"fmt"

	"whatsnext/internal/cpu"
	"whatsnext/internal/energy"
	"whatsnext/internal/intermittent"
	"whatsnext/internal/mem"
)

// RunLockstep executes the same campaign as Run with the same Report, but
// batches the schedule through one shared trunk execution instead of one
// full re-execution per kill point.
//
// The naive campaign costs O(points x program length): every injected run
// re-executes the prefix up to its kill point and the suffix after it,
// even though the prefix is identical to the golden run by construction
// and the suffix is identical whenever the restore path re-converges. The
// lockstep engine exploits both halves:
//
//   - Prefix sharing: one trunk device executes the golden path once. At
//     each kill boundary (visited in ascending order) the trunk is forked —
//     memory is deep-copied, the CPU shares the trunk's decode cache and
//     superblock translation, and the policy state (checkpoint, undo log)
//     is duplicated — and the forced failure/restore round trip is applied
//     to the fork only.
//
//   - Convergence detection: after restore, a checkpointing policy
//     re-executes at most ReplayDistance cycles before it is back at the
//     kill boundary. The fork runs exactly that far; if its architectural
//     state and memory then match the trunk's (which IS the golden state at
//     that boundary), the remainder of the run is deterministic and
//     identical to the golden suffix, so the fork is clean and is
//     discarded without executing it. Only forks that fail to re-converge —
//     actual crash-consistency violations, skim-point jumps, or memo-induced
//     cycle drift — run to halt and are diffed like any naive injected run.
//
// The fallback is total: a policy that does not implement
// intermittent.ForkablePolicy and intermittent.ReplayDistancer routes the
// whole campaign through Run. Reports are identical to Run's in every
// field either way.
func RunLockstep(t Target, cfg Config, sched Schedule) (*Report, error) {
	if cfg.Policy == nil {
		return nil, fmt.Errorf("faultinject: Config.Policy is required")
	}
	if p := cfg.Policy(); !forkable(p) {
		return Run(t, cfg, sched)
	}
	normalize(&cfg)

	var costs []cpu.Cost
	golden, err := runOnce(t, cfg, noKill, ^uint64(0), &costs, nil)
	if err != nil {
		return nil, fmt.Errorf("faultinject: %s: golden run: %w", t.Name, err)
	}
	if !golden.halted {
		return nil, fmt.Errorf("faultinject: %s: golden run did not halt", t.Name)
	}
	if cfg.Budget == 0 {
		cfg.Budget = 4*golden.cycles + 65536
	}

	points := killPoints(costs, golden.cycles, sched)
	rep := &Report{
		Target:             t.Name,
		Policy:             cfg.Policy().Name(),
		GoldenCycles:       golden.cycles,
		GoldenInstructions: golden.instrs,
		Points:             len(points),
	}
	if n := len(points); n > 0 {
		rep.StrideCycles = golden.cycles / uint64(n)
	}

	trunk, err := newDevice(t, cfg)
	if err != nil {
		return nil, fmt.Errorf("faultinject: %s: trunk: %w", t.Name, err)
	}
	// Dirty-extent tracking turns per-kill-point fork costs from
	// O(memory size) into O(bytes touched): the first fork deep-copies,
	// and each later kill point re-syncs that same child device by copying
	// only what either side wrote since the previous sync.
	trunk.m.SetDirtyTracking(true)
	trunk.tracked = true
	var spare *device
	for _, kill := range points {
		rep.Schedule = append(rep.Schedule, kill.cycle)
		// Advance the trunk to the first instruction boundary at or past
		// the kill cycle — exactly where runOnce would force the failure.
		if err := trunk.runTo(kill.cycle, cfg.Budget, nil); err != nil {
			return nil, fmt.Errorf("faultinject: %s: kill at cycle %d: %w", t.Name, kill.cycle, err)
		}
		if trunk.c.Halted {
			// The boundary at/past this kill cycle is the HALT retirement:
			// runOnce never injects and the run trivially matches golden.
			continue
		}
		var (
			child *device
			ok    bool
		)
		if spare == nil {
			trunk.m.ResetDirty()
			child, ok = trunk.fork()
		} else {
			child, ok = trunk.forkInto(spare)
		}
		if !ok {
			return nil, fmt.Errorf("faultinject: %s: policy %s lost forkability mid-run", t.Name, rep.Policy)
		}
		spare = child
		got, err := child.finish(trunk, golden.cycles, cfg.Budget)
		if err != nil {
			return nil, fmt.Errorf("faultinject: %s: kill at cycle %d: %w", t.Name, kill.cycle, err)
		}
		if got == nil {
			continue // re-converged: clean by construction
		}
		if d, diverged := diff(kill, &golden, got); diverged {
			rep.Divergences = append(rep.Divergences, d)
		}
	}
	return rep, nil
}

// forkable reports whether the policy supports trunk forking and replay
// bounding.
func forkable(p intermittent.Policy) bool {
	_, f := p.(intermittent.ForkablePolicy)
	_, d := p.(intermittent.ReplayDistancer)
	return f && d
}

// normalize fills the Config defaults exactly as Run does.
func normalize(cfg *Config) {
	if cfg.Mem == (mem.Config{}) {
		cfg.Mem = mem.DefaultConfig()
	}
	if cfg.Device == (energy.DeviceConfig{}) {
		cfg.Device = energy.DefaultDeviceConfig()
	}
}

// finish applies the forced failure to a freshly forked child and resolves
// its outcome. It returns nil when the child provably re-converges with
// the trunk (final memory identical to golden — clean), or the child's
// full run result for the caller to diff.
func (d *device) finish(trunk *device, goldenCycles, budget uint64) (*runResult, error) {
	dist := d.policy.(intermittent.ReplayDistancer).ReplayDistance()
	d.r.ForceFailure()

	// The convergence shortcut is only sound comfortably inside the budget:
	// near the line, whether the re-executed run halts before exceeding it
	// depends on sub-window boundaries, so defer to a full run.
	if goldenCycles+dist+cpu.MaxInstrCycles <= budget {
		target := d.cycles + dist
		if err := d.runTo(target, budget, nil); err != nil {
			return nil, err
		}
		if !d.c.Halted && d.cycles == target && d.converged(trunk) {
			return nil, nil
		}
	}
	if err := d.runTo(noKill, budget, nil); err != nil {
		return nil, err
	}
	res, err := d.result()
	if err != nil {
		return nil, err
	}
	return &res, nil
}

// converged reports whether the child's architectural state and memory
// match the trunk's at the same pure-cycle instruction boundary. Stats,
// tracking shadow state, and policy-internal counters are excluded: they
// affect overhead accounting, never the data a deterministic continuation
// computes.
func (d *device) converged(trunk *device) bool {
	c, tc := d.c, trunk.c
	if c.Regs != tc.Regs ||
		c.N != tc.N || c.Z != tc.Z || c.C != tc.C || c.V != tc.V ||
		c.SkimArmed != tc.SkimArmed || c.SkimTarget != tc.SkimTarget {
		return false
	}
	if d.tracked && trunk.tracked {
		// Both memories were byte-identical at the fork's last sync and each
		// side has recorded every write since, so comparing the union of the
		// two dirty extents is a full state-equality test.
		return d.m.EqualWithin(trunk.m, d.m.Dirty().Union(trunk.m.Dirty()))
	}
	return d.m.StateEqual(trunk.m)
}
