package faultinject_test

import (
	"reflect"
	"testing"

	"whatsnext/internal/asm"
	"whatsnext/internal/faultinject"
)

// TestLockstepMatchesRun is the lockstep engine's contract: for every
// corpus program — hazard-seeded and clean — under every runtime policy,
// RunLockstep produces a Report identical in every field to the naive
// one-run-per-kill-point campaign, including the exact divergence list
// (kill cycles, first differing words, values).
func TestLockstepMatchesRun(t *testing.T) {
	cases := []struct {
		name  string
		prog  func(t *testing.T) *asm.Program
		sched faultinject.Schedule
	}{
		{"repeated_input", fromFile("repeated_input.s"), faultinject.Schedule{Exhaustive: true, MaxPoints: 256}},
		{"war_crossblock", fromFile("war_crossblock.s"), faultinject.Schedule{Exhaustive: true, MaxPoints: 256}},
		{"commit_order", fromFile("commit_order.s"), faultinject.Schedule{Exhaustive: true, MaxPoints: 256}},
		{"rmw_nonidem", fromFile("rmw_nonidem.s"), faultinject.Schedule{Exhaustive: true, MaxPoints: 256}},
		{"sram_cross", fromFile("sram_cross.s"), faultinject.Schedule{Exhaustive: true, MaxPoints: 128}},
		{"skim_stale_reg", fromFile("skim_stale_reg.s"), faultinject.Schedule{Exhaustive: true}},
		{"clean_accum", fromSource(cleanAccum), faultinject.Schedule{Exhaustive: true}},
		{"clean_strided", fromSource(cleanAccum), faultinject.Schedule{Points: 13}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := tc.prog(t)
			target := faultinject.FromProgram(tc.name, p)
			for _, rt := range []string{"clank", "nvp", "undolog", "naive"} {
				cfg := faultinject.Config{Policy: policyFactory(rt)}
				want, err := faultinject.Run(target, cfg, tc.sched)
				if err != nil {
					t.Fatalf("%s: Run: %v", rt, err)
				}
				got, err := faultinject.RunLockstep(target, cfg, tc.sched)
				if err != nil {
					t.Fatalf("%s: RunLockstep: %v", rt, err)
				}
				if !reflect.DeepEqual(want, got) {
					t.Errorf("%s: lockstep report differs\n naive:    %+v\n lockstep: %+v", rt, want, got)
				}
			}
		})
	}
}

func fromFile(file string) func(t *testing.T) *asm.Program {
	return func(t *testing.T) *asm.Program { return loadProgram(t, file) }
}

func fromSource(src string) func(t *testing.T) *asm.Program {
	return func(t *testing.T) *asm.Program {
		t.Helper()
		p, err := asm.Assemble(src)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
}

// TestLockstepTightBudget pins the budget-line behavior: with a budget too
// small for any re-execution, both engines must report the same
// lost-forward-progress divergences.
func TestLockstepTightBudget(t *testing.T) {
	p := fromSource(cleanAccum)(t)
	target := faultinject.FromProgram("clean_accum", p)
	for _, rt := range []string{"clank", "nvp", "naive"} {
		var costs0 uint64
		{
			// Golden length: run once uninjected to size the tight budget.
			rep, err := faultinject.Run(target, faultinject.Config{Policy: policyFactory(rt)},
				faultinject.Schedule{Points: 1})
			if err != nil {
				t.Fatal(err)
			}
			costs0 = rep.GoldenCycles
		}
		cfg := faultinject.Config{Policy: policyFactory(rt), Budget: costs0 + 8}
		sched := faultinject.Schedule{Exhaustive: true, MaxPoints: 64}
		want, err := faultinject.Run(target, cfg, sched)
		if err != nil {
			t.Fatalf("%s: Run: %v", rt, err)
		}
		got, err := faultinject.RunLockstep(target, cfg, sched)
		if err != nil {
			t.Fatalf("%s: RunLockstep: %v", rt, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%s: tight-budget lockstep report differs\n naive:    %+v\n lockstep: %+v", rt, want, got)
		}
	}
}

// benchCampaign runs one exhaustive campaign through the given engine.
func benchCampaign(b *testing.B, engine func(faultinject.Target, faultinject.Config, faultinject.Schedule) (*faultinject.Report, error)) {
	b.Helper()
	p, err := asm.Assemble(cleanAccum)
	if err != nil {
		b.Fatal(err)
	}
	target := faultinject.FromProgram("clean_accum", p)
	cfg := faultinject.Config{Policy: policyFactory("clank")}
	sched := faultinject.Schedule{Exhaustive: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := engine(target, cfg, sched)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Clean() {
			b.Fatalf("unexpected divergence: %s", rep.Divergences[0])
		}
		if i == 0 {
			b.ReportMetric(float64(rep.Points), "kill_points")
		}
	}
}

// BenchmarkExhaustiveNaive measures the one-run-per-kill-point campaign.
func BenchmarkExhaustiveNaive(b *testing.B) { benchCampaign(b, faultinject.Run) }

// BenchmarkExhaustiveLockstep measures the shared-trunk campaign.
func BenchmarkExhaustiveLockstep(b *testing.B) { benchCampaign(b, faultinject.RunLockstep) }
