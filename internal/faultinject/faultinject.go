// Package faultinject is the dynamic half of the crash-consistency
// contract: a systematic power-failure injector over the batched stepper.
//
// For every scheduled kill point it executes the target program on a fresh
// device, forces a full power-failure/restore round trip through the
// configured intermittent runtime at the exact instruction boundary, lets
// the run finish, and differentially compares the final non-volatile data
// region against an uninterrupted golden run. Any difference — a differing
// word, or a run that no longer halts within budget — is a witnessed
// crash-consistency violation, reported with the cycle of failure and the
// first differing word.
//
// Kill points are expressed in pure CPU cycles (the sum of per-instruction
// Cost.Cycles), independent of runtime overhead charges, so a schedule
// derived from the golden run lands on the same instruction boundaries in
// the injected runs. The static analysis in internal/wncheck (WN103,
// WN104 under Options.Crash) is the other half of the contract: programs
// it certifies clean must show zero divergence here, and programs it flags
// must produce a divergence the injector can point to. The tests in this
// package assert both directions.
package faultinject

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"whatsnext/internal/cpu"
	"whatsnext/internal/energy"
	"whatsnext/internal/intermittent"
	"whatsnext/internal/mem"
)

// Config selects the runtime model and device under test.
type Config struct {
	// Policy builds a fresh intermittent runtime per run (each run needs
	// its own checkpoint state). Required.
	Policy func() intermittent.Policy
	// Mem overrides the memory geometry; the zero value means
	// mem.DefaultConfig().
	Mem mem.Config
	// Device overrides the energy device; the zero value means
	// energy.DefaultDeviceConfig(). Only the NV-write energy figure is
	// consulted — the injector kills power explicitly rather than through
	// the harvesting model.
	Device energy.DeviceConfig
	// Budget bounds the active cycles of any single run; zero derives
	// 4x the golden run plus slack. An injected run that exceeds it has
	// lost forward progress, which counts as a divergence.
	Budget uint64
}

// Schedule picks the kill points.
type Schedule struct {
	// Exhaustive kills power at every instruction boundary of the golden
	// run (including cycle 0, before the first instruction).
	Exhaustive bool
	// MaxPoints caps an exhaustive schedule; beyond it the boundaries are
	// sampled evenly. Zero means no cap.
	MaxPoints int
	// Points, when not exhaustive, kills at Points cycle offsets spread
	// evenly across the golden run: k*total/(Points+1) for k = 1..Points.
	Points int
}

// Divergence is one witnessed crash-consistency violation.
type Divergence struct {
	KillCycle       uint64 // CPU cycle at which power was killed
	KillInstruction uint64 // instructions retired before the kill
	Halted          bool   // false: the injected run exceeded the budget
	Addr            uint32 // first differing NV data word (when Halted)
	Got, Want       uint32 // its value in the injected vs golden run
	Words           int    // total differing words
}

func (d Divergence) String() string {
	if !d.Halted {
		return fmt.Sprintf("kill at cycle %d (instruction %d): run lost forward progress (budget exceeded)",
			d.KillCycle, d.KillInstruction)
	}
	return fmt.Sprintf("kill at cycle %d (instruction %d): %d differing words, first at %#08x: got %#x want %#x",
		d.KillCycle, d.KillInstruction, d.Words, d.Addr, d.Got, d.Want)
}

// Report summarizes one injection campaign.
type Report struct {
	Target             string
	Policy             string
	GoldenCycles       uint64 // pure CPU cycles of the uninterrupted run
	GoldenInstructions uint64
	Points             int      // kill points actually injected
	StrideCycles       uint64   // mean cycle distance between kill points
	Schedule           []uint64 // the exact kill cycles, in injection order
	Divergences        []Divergence
}

// Clean reports whether every injected run reproduced the golden memory.
func (r *Report) Clean() bool { return len(r.Divergences) == 0 }

func (r *Report) String() string {
	head := fmt.Sprintf("faultinject: %s under %s: %d kill points over %d cycles (stride ~%d)",
		r.Target, r.Policy, r.Points, r.GoldenCycles, r.StrideCycles)
	if r.Clean() {
		return head + ": clean"
	}
	return fmt.Sprintf("%s: %d DIVERGENT — first: %s", head, len(r.Divergences), r.Divergences[0])
}

// Run executes the campaign: one golden run, then one injected run per
// scheduled kill point. Errors are infrastructure failures (a program that
// faults or cannot finish even uninterrupted); divergences are reported in
// the Report, not as errors.
func Run(t Target, cfg Config, sched Schedule) (*Report, error) {
	if cfg.Policy == nil {
		return nil, fmt.Errorf("faultinject: Config.Policy is required")
	}
	if cfg.Mem == (mem.Config{}) {
		cfg.Mem = mem.DefaultConfig()
	}
	if cfg.Device == (energy.DeviceConfig{}) {
		cfg.Device = energy.DefaultDeviceConfig()
	}

	var costs []cpu.Cost
	golden, err := runOnce(t, cfg, noKill, ^uint64(0), &costs, nil)
	if err != nil {
		return nil, fmt.Errorf("faultinject: %s: golden run: %w", t.Name, err)
	}
	if !golden.halted {
		return nil, fmt.Errorf("faultinject: %s: golden run did not halt", t.Name)
	}
	if cfg.Budget == 0 {
		cfg.Budget = 4*golden.cycles + 65536
	}

	points := killPoints(costs, golden.cycles, sched)
	rep := &Report{
		Target:             t.Name,
		Policy:             cfg.Policy().Name(),
		GoldenCycles:       golden.cycles,
		GoldenInstructions: golden.instrs,
		Points:             len(points),
	}
	if n := len(points); n > 0 {
		rep.StrideCycles = golden.cycles / uint64(n)
	}

	for _, kill := range points {
		rep.Schedule = append(rep.Schedule, kill.cycle)
		got, err := runOnce(t, cfg, kill.cycle, cfg.Budget, nil, nil)
		if err != nil {
			return nil, fmt.Errorf("faultinject: %s: kill at cycle %d: %w", t.Name, kill.cycle, err)
		}
		if d, diverged := diff(kill, &golden, &got); diverged {
			rep.Divergences = append(rep.Divergences, d)
		}
	}
	return rep, nil
}

// killPoint is one scheduled failure: a cycle count and, for reporting,
// the number of instructions retired when it is reached.
type killPoint struct {
	cycle uint64
	instr uint64
}

// killPoints derives the schedule from the golden run's per-instruction
// costs. Boundaries are the cumulative cycle counts after each instruction;
// the boundary after the final instruction (HALT) is excluded — the run is
// already over.
func killPoints(costs []cpu.Cost, total uint64, sched Schedule) []killPoint {
	if !sched.Exhaustive {
		var pts []killPoint
		n := uint64(sched.Points)
		for k := uint64(1); k <= n; k++ {
			c := k * total / (n + 1)
			pts = append(pts, killPoint{cycle: c, instr: instructionAt(costs, c)})
		}
		return pts
	}
	bounds := []killPoint{{cycle: 0, instr: 0}}
	var cum uint64
	for i, co := range costs {
		if i == len(costs)-1 {
			break
		}
		cum += uint64(co.Cycles)
		bounds = append(bounds, killPoint{cycle: cum, instr: uint64(i + 1)})
	}
	if sched.MaxPoints > 0 && len(bounds) > sched.MaxPoints {
		sampled := make([]killPoint, sched.MaxPoints)
		for i := range sampled {
			sampled[i] = bounds[i*len(bounds)/sched.MaxPoints]
		}
		return sampled
	}
	return bounds
}

// instructionAt counts the instructions fully retired before cycle c.
func instructionAt(costs []cpu.Cost, c uint64) uint64 {
	var cum, n uint64
	for _, co := range costs {
		if cum >= c {
			break
		}
		cum += uint64(co.Cycles)
		n++
	}
	return n
}

// diff compares an injected run against the golden run.
func diff(kill killPoint, golden, got *runResult) (Divergence, bool) {
	if !got.halted {
		return Divergence{KillCycle: kill.cycle, KillInstruction: kill.instr}, true
	}
	if bytes.Equal(golden.data, got.data) {
		return Divergence{}, false
	}
	d := Divergence{KillCycle: kill.cycle, KillInstruction: kill.instr, Halted: true}
	first := true
	for off := 0; off+4 <= len(golden.data); off += 4 {
		w := binary.LittleEndian.Uint32(golden.data[off:])
		g := binary.LittleEndian.Uint32(got.data[off:])
		if w == g {
			continue
		}
		d.Words++
		if first {
			first = false
			d.Addr = mem.DataBase + uint32(off)
			d.Got, d.Want = g, w
		}
	}
	return d, d.Words > 0
}
