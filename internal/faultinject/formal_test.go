package faultinject_test

import (
	"testing"

	"whatsnext/internal/faultinject"
	"whatsnext/internal/mem"
	"whatsnext/internal/wncheck"
)

// TestFormalRulesCrossValidated is the full certificate contract over the
// seeded corpus for the formal-conditions tier: each program carries exactly
// one WN105–WN108 hazard, and for each the static analysis must flag it
// with real region extents, the verification certificate must carry the
// flagged region, and CrossValidate must both witness the region with a
// concrete kill cycle + differing word AND find zero divergence at any
// certified (proven-clean) boundary.
//
// The runtime per rule is the weakest one that exposes the hazard:
//
//   - WN105 runs under NVP with the input word declared — in-place resume is
//     what splices two input worlds into one final state. Checkpointing
//     runtimes replay both reads consistently here.
//   - WN106/WN108 run under the naive runtime: Clank, NVP, and the undo log
//     each dynamically repair WAR/RMW re-execution, which is exactly why
//     those rules are advisory rather than a contract violation under the
//     certified runtimes.
//   - WN107 runs under all three certified runtimes: skim resumption is
//     honored by each, and none can roll a persisted NV store back past the
//     skim target.
func TestFormalRulesCrossValidated(t *testing.T) {
	inputRange := wncheck.AddrRange{Start: mem.DataBase, End: mem.DataBase + 4}
	cases := []struct {
		file     string
		code     string
		runtimes []string
		opts     wncheck.Options
		inputs   []uint32
	}{
		{
			file: "repeated_input.s", code: wncheck.CodeRepeatedInput,
			runtimes: []string{"nvp"},
			opts:     wncheck.Options{Crash: true, Input: []wncheck.AddrRange{inputRange}},
			inputs:   []uint32{mem.DataBase},
		},
		{
			file: "war_crossblock.s", code: wncheck.CodeWARCross,
			runtimes: []string{"naive"},
			opts:     wncheck.Options{Crash: true},
		},
		{
			file: "commit_order.s", code: wncheck.CodeCommitOrder,
			runtimes: []string{"clank", "nvp", "undolog"},
			opts:     wncheck.Options{Crash: true},
		},
		{
			file: "rmw_nonidem.s", code: wncheck.CodeNonIdempotent,
			runtimes: []string{"naive"},
			opts:     wncheck.Options{Crash: true},
		},
	}
	for _, tc := range cases {
		t.Run(tc.file, func(t *testing.T) {
			p := loadProgram(t, tc.file)
			res, cert, err := wncheck.Verify(p, tc.opts)
			if err != nil {
				t.Fatal(err)
			}

			var flagged *wncheck.Diagnostic
			for i, d := range res.Diags {
				if d.Code == tc.code {
					flagged = &res.Diags[i]
				}
			}
			if flagged == nil {
				t.Fatalf("static analysis did not flag %s with %s: %v", tc.file, tc.code, res.Diags)
			}
			if flagged.RegionEnd <= flagged.RegionStart {
				t.Fatalf("%s finding has no region extent: [%#x, %#x]",
					tc.code, flagged.RegionStart, flagged.RegionEnd)
			}

			certRegions := 0
			for _, r := range cert.Flagged {
				if r.Code == tc.code {
					certRegions++
				}
			}
			if certRegions == 0 {
				t.Fatalf("certificate carries no %s region: %+v", tc.code, cert.Flagged)
			}

			target := faultinject.FromProgram(tc.file, p)
			for _, rt := range tc.runtimes {
				cfg := faultinject.CrossConfig{
					Config:     faultinject.Config{Policy: policyFactory(rt)},
					InputWords: tc.inputs,
				}
				rep, err := faultinject.CrossValidate(target, cfg, cert)
				if err != nil {
					t.Fatalf("%s: %v", rt, err)
				}
				for _, v := range rep.Violations {
					t.Errorf("%s: divergence at CERTIFIED boundary: %s", rt, v)
				}
				for _, o := range rep.Outcomes {
					if o.Witness == nil {
						t.Errorf("%s: flagged region %s [%#x, %#x] has no dynamic witness over %d points",
							rt, o.Region.Code, o.Region.Start, o.Region.End, rep.Points)
						continue
					}
					if o.Witness.Halted && o.Witness.Words == 0 {
						t.Errorf("%s: witness for %s carries no differing word", rt, o.Region.Code)
					}
					t.Logf("%s under %s: region [%#x, %#x] witnessed: %s",
						tc.file, rt, o.Region.Start, o.Region.End, o.Witness)
				}
				if !rep.Validated() {
					t.Errorf("%s: %s", rt, rep)
				}
			}
		})
	}
}
