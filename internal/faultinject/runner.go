package faultinject

import (
	"fmt"

	"whatsnext/internal/asm"
	"whatsnext/internal/compiler"
	"whatsnext/internal/cpu"
	"whatsnext/internal/energy"
	"whatsnext/internal/intermittent"
	"whatsnext/internal/mem"
)

// Target is a program under injection: an image plus optional input
// installation, so every run starts from an identical device state.
type Target struct {
	Name     string
	Image    []byte
	Amenable []uint32
	// Install, when non-nil, writes the inputs into data memory after the
	// program image is loaded.
	Install func(m *mem.Memory) error
}

// FromProgram wraps an assembled program.
func FromProgram(name string, p *asm.Program) Target {
	return Target{Name: name, Image: p.Image, Amenable: p.Amenable}
}

// FromCompiled wraps a compiled kernel with its input arrays.
func FromCompiled(name string, c *compiler.Compiled, inputs map[string][]int64) Target {
	return Target{
		Name:     name,
		Image:    c.Program.Image,
		Amenable: c.Program.Amenable,
		Install: func(m *mem.Memory) error {
			for in, vals := range inputs {
				if err := c.Layout.Install(m, in, vals); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

// noKill runs a golden (uninterrupted) execution.
const noKill = ^uint64(0)

// runResult is the observable outcome of one run: whether it halted, its
// pure CPU cycle/instruction counts, and the final NV data region.
type runResult struct {
	halted bool
	cycles uint64
	instrs uint64
	data   []byte
}

// runOnce executes the target on a fresh device, killing power at the
// first instruction boundary at or after killCycle (pure CPU cycles).
// When collect is non-nil every instruction's cost is appended, giving the
// caller the golden run's boundary schedule. When onKill is non-nil it runs
// right after the forced failure/restore round trip — CrossValidate uses it
// to advance input locations, modeling an external world that moved on
// while the device was dark.
//
// The loop mirrors the batched executor in internal/intermittent: windows
// are bounded by the policy's horizon so overhead charges (watchdog
// checkpoints) land on the exact instruction the reference path would
// pick, and NV-data stores are routed through Step so BeforeStore hooks
// (Clank's violation checkpoints, the undo log) retain full fidelity.
func runOnce(t Target, cfg Config, killCycle, budget uint64, collect *[]cpu.Cost, onKill func(*mem.Memory)) (runResult, error) {
	m := mem.New(cfg.Mem)
	if err := m.LoadProgram(t.Image); err != nil {
		return runResult{}, err
	}
	if t.Install != nil {
		if err := t.Install(m); err != nil {
			return runResult{}, err
		}
	}
	c := cpu.New(m)
	c.SetAmenablePCs(t.Amenable)
	// The supply exists only because policies charge NV-write energy
	// through it; the injector itself is the sole source of failures, so a
	// token always-on trace suffices and every divergence is attributable
	// to the kill point.
	supply := energy.NewSupply(cfg.Device, energy.ConstantTrace(1, 10, 1))
	policy := cfg.Policy()
	r := intermittent.NewRunner(c, m, supply, policy)

	var (
		cycles, instrs uint64
		killed         = killCycle == noKill
		forceStep      bool
		costs          []cpu.Cost
	)
	stepOnce := func() error {
		cost, err := c.Step()
		if err != nil {
			return err
		}
		policy.AfterStep(cost)
		cycles += uint64(cost.Cycles)
		instrs++
		if collect != nil {
			*collect = append(*collect, cost)
		}
		return nil
	}

	for !c.Halted {
		if cycles > budget {
			return runResult{halted: false, cycles: cycles, instrs: instrs}, nil
		}
		if !killed && cycles >= killCycle {
			killed = true
			r.ForceFailure()
			if onKill != nil {
				onKill(m)
			}
			forceStep = false
			continue
		}
		if forceStep {
			forceStep = false
			if err := stepOnce(); err != nil {
				return runResult{}, err
			}
			continue
		}
		horizon, _ := policy.BatchHorizon()
		if horizon == 0 {
			// A checkpoint is due at this exact boundary; take the
			// per-step path so it observes the right state.
			if err := stepOnce(); err != nil {
				return runResult{}, err
			}
			continue
		}
		win := horizon
		if !killed {
			if left := killCycle - cycles; left < win {
				win = left
			}
		}
		if budget != ^uint64(0) {
			// cycles <= budget here (checked at the top of the loop), so
			// this cannot underflow; +1 lets the window cross the budget
			// line so the overshoot is detected.
			if left := budget - cycles + 1; left < win {
				win = left
			}
		}
		costs = costs[:0]
		res, err := c.RunUntil(win, &costs)
		for _, cost := range costs {
			policy.AfterStep(cost)
		}
		if collect != nil {
			*collect = append(*collect, costs...)
		}
		cycles += res.Cycles
		instrs += res.Instructions
		if err != nil {
			return runResult{}, fmt.Errorf("at cycle %d: %w", cycles, err)
		}
		forceStep = res.Reason == cpu.StopStore
	}

	out := runResult{halted: true, cycles: cycles, instrs: instrs}
	out.data = make([]byte, cfg.Mem.DataBytes)
	if err := m.ReadData(mem.DataBase, out.data); err != nil {
		return runResult{}, err
	}
	return out, nil
}
