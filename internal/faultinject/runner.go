package faultinject

import (
	"fmt"

	"whatsnext/internal/asm"
	"whatsnext/internal/compiler"
	"whatsnext/internal/cpu"
	"whatsnext/internal/energy"
	"whatsnext/internal/intermittent"
	"whatsnext/internal/mem"
)

// Target is a program under injection: an image plus optional input
// installation, so every run starts from an identical device state.
type Target struct {
	Name     string
	Image    []byte
	Amenable []uint32
	// Install, when non-nil, writes the inputs into data memory after the
	// program image is loaded.
	Install func(m *mem.Memory) error
}

// FromProgram wraps an assembled program.
func FromProgram(name string, p *asm.Program) Target {
	return Target{Name: name, Image: p.Image, Amenable: p.Amenable}
}

// FromCompiled wraps a compiled kernel with its input arrays.
func FromCompiled(name string, c *compiler.Compiled, inputs map[string][]int64) Target {
	return Target{
		Name:     name,
		Image:    c.Program.Image,
		Amenable: c.Program.Amenable,
		// InstallData also pre-fills progress-embedded outputs with their
		// sentinel, so every injected run starts from the same resumable state.
		Install: func(m *mem.Memory) error { return c.InstallData(m, inputs) },
	}
}

// noKill runs a golden (uninterrupted) execution.
const noKill = ^uint64(0)

// runResult is the observable outcome of one run: whether it halted, its
// pure CPU cycle/instruction counts, and the final NV data region.
type runResult struct {
	halted bool
	cycles uint64
	instrs uint64
	data   []byte
}

// device is one target under execution: CPU, memory, runner, policy, and
// the pure-CPU-cycle position. runOnce drives a fresh device end to end;
// the lockstep engine additionally forks mid-run devices at kill
// boundaries, so the window loop lives here, shared by both.
type device struct {
	cfg    Config
	m      *mem.Memory
	c      *cpu.CPU
	r      *intermittent.Runner
	policy intermittent.Policy

	cycles uint64 // pure CPU cycles executed (sum of Cost.Cycles)
	instrs uint64

	// tracked marks a device whose memory has dirty-extent tracking enabled
	// (the lockstep trunk and its forks), allowing windowed re-sync and
	// convergence compares instead of full-region ones.
	tracked bool
}

// newDevice builds a fresh device for the target. The supply exists only
// because policies charge NV-write energy through it; the injector itself
// is the sole source of failures, so a token always-on trace suffices and
// every divergence is attributable to the kill point.
func newDevice(t Target, cfg Config) (*device, error) {
	m := mem.New(cfg.Mem)
	if err := m.LoadProgram(t.Image); err != nil {
		return nil, err
	}
	if t.Install != nil {
		if err := t.Install(m); err != nil {
			return nil, err
		}
	}
	c := cpu.New(m)
	c.SetAmenablePCs(t.Amenable)
	supply := energy.NewSupply(cfg.Device, energy.ConstantTrace(1, 10, 1))
	policy := cfg.Policy()
	return &device{cfg: cfg, m: m, c: c, r: intermittent.NewRunner(c, m, supply, policy), policy: policy}, nil
}

// fork clones the device at its current instruction boundary: memory is
// deep-copied, the CPU shares the decode cache and superblock translation
// with the trunk, and the policy is duplicated via ForkablePolicy. Returns
// false when the policy cannot fork.
func (d *device) fork() (*device, bool) {
	m := d.m.Clone()
	return d.forkOnto(m)
}

// forkInto rebuilds a previously used fork on top of the trunk's current
// state without a full memory clone: the spare's memory is known to match
// the trunk everywhere outside (spare writes since its sync) ∪ (trunk
// writes since that sync), so copying just that union re-synchronizes it in
// O(bytes actually touched). Tracking stamps are not copied — the forced
// failure the caller applies next issues a ClearAccessSets, and the spare's
// epoch only moves forward, so its stale stamps can never read as current.
func (d *device) forkInto(spare *device) (*device, bool) {
	ext := spare.m.Dirty().Union(d.m.Dirty())
	spare.m.CopyDirty(d.m, ext)
	spare.m.ResetDirty()
	d.m.ResetDirty()
	return d.forkOnto(spare.m)
}

// forkOnto builds the CPU/runner/policy fork on an already-synced memory.
func (d *device) forkOnto(m *mem.Memory) (*device, bool) {
	c := d.c.Fork(m)
	r, ok := d.r.Fork(c, m, energy.NewSupply(d.cfg.Device, energy.ConstantTrace(1, 10, 1)))
	if !ok {
		return nil, false
	}
	return &device{cfg: d.cfg, m: m, c: c, r: r, policy: r.Policy,
		cycles: d.cycles, instrs: d.instrs, tracked: d.tracked}, true
}

// runTo advances the device until it halts, reaches the first instruction
// boundary at or past stop (pure CPU cycles), or crosses budget. The loop
// mirrors the batched executor in internal/intermittent: windows are
// bounded by the policy's horizon so overhead charges (watchdog
// checkpoints) land on the exact instruction the reference path would
// pick, and NV-data stores are routed through Step so BeforeStore hooks
// (Clank's violation checkpoints, the undo log) retain full fidelity.
func (d *device) runTo(stop, budget uint64, collect *[]cpu.Cost) error {
	var (
		forceStep bool
		costs     []cpu.Cost
	)
	stepOnce := func() error {
		cost, err := d.c.Step()
		if err != nil {
			return err
		}
		d.policy.AfterStep(cost)
		d.cycles += uint64(cost.Cycles)
		d.instrs++
		if collect != nil {
			*collect = append(*collect, cost)
		}
		return nil
	}

	for !d.c.Halted {
		if d.cycles > budget || d.cycles >= stop {
			return nil
		}
		if forceStep {
			forceStep = false
			if err := stepOnce(); err != nil {
				return err
			}
			continue
		}
		horizon, _ := d.policy.BatchHorizon()
		if horizon == 0 {
			// A checkpoint is due at this exact boundary; take the
			// per-step path so it observes the right state.
			if err := stepOnce(); err != nil {
				return err
			}
			continue
		}
		win := horizon
		if left := stop - d.cycles; left < win {
			win = left
		}
		if budget != ^uint64(0) {
			// cycles <= budget here (checked at the top of the loop), so
			// this cannot underflow; +1 lets the window cross the budget
			// line so the overshoot is detected.
			if left := budget - d.cycles + 1; left < win {
				win = left
			}
		}
		costs = costs[:0]
		res, err := d.c.Run(win, &costs)
		for _, cost := range costs {
			d.policy.AfterStep(cost)
		}
		if collect != nil {
			*collect = append(*collect, costs...)
		}
		d.cycles += res.Cycles
		d.instrs += res.Instructions
		if err != nil {
			return fmt.Errorf("at cycle %d: %w", d.cycles, err)
		}
		forceStep = res.Reason == cpu.StopStore
	}
	return nil
}

// result snapshots the observable outcome of a finished run.
func (d *device) result() (runResult, error) {
	if !d.c.Halted {
		return runResult{halted: false, cycles: d.cycles, instrs: d.instrs}, nil
	}
	out := runResult{halted: true, cycles: d.cycles, instrs: d.instrs}
	out.data = make([]byte, d.cfg.Mem.DataBytes)
	if err := d.m.ReadData(mem.DataBase, out.data); err != nil {
		return runResult{}, err
	}
	return out, nil
}

// runOnce executes the target on a fresh device, killing power at the
// first instruction boundary at or after killCycle (pure CPU cycles).
// When collect is non-nil every instruction's cost is appended, giving the
// caller the golden run's boundary schedule. When onKill is non-nil it runs
// right after the forced failure/restore round trip — CrossValidate uses it
// to advance input locations, modeling an external world that moved on
// while the device was dark.
func runOnce(t Target, cfg Config, killCycle, budget uint64, collect *[]cpu.Cost, onKill func(*mem.Memory)) (runResult, error) {
	d, err := newDevice(t, cfg)
	if err != nil {
		return runResult{}, err
	}
	if killCycle != noKill {
		if err := d.runTo(killCycle, budget, collect); err != nil {
			return runResult{}, err
		}
		if !d.c.Halted && d.cycles <= budget {
			d.r.ForceFailure()
			if onKill != nil {
				onKill(d.m)
			}
		}
	}
	if err := d.runTo(noKill, budget, collect); err != nil {
		return runResult{}, err
	}
	return d.result()
}
