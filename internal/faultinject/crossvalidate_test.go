package faultinject_test

import (
	"testing"

	"whatsnext/internal/compiler"
	"whatsnext/internal/faultinject"
	"whatsnext/internal/wncheck"
	"whatsnext/internal/workloads"
)

// tinyParams shrinks each Table I kernel to a size where strided fault
// injection stays fast while still exercising every loop and store pattern
// the full-size kernel has.
func tinyParams(name string) workloads.Params {
	switch name {
	case "Conv2d":
		return workloads.Params{ImgW: 6, ImgH: 6, K: 3}
	case "MatMul":
		return workloads.Params{N: 6}
	case "MatAdd":
		return workloads.Params{N: 8}
	case "Home":
		return workloads.Params{Windows: 4, WindowSize: 8}
	case "Var":
		return workloads.Params{Windows: 4, WindowSize: 8}
	case "NetMotion":
		return workloads.Params{Steps: 48}
	}
	return workloads.Params{}
}

// TestKernelsCertifiedAndSurviveInjection is the kernel-level
// cross-validation: every Table I benchmark, compiled precise, is (a)
// certified crash-consistent by the static analysis — zero error-severity
// findings with the crash pass on — and (b) bit-exact under strided power
// failure injection (24 points, stride documented in the report) under
// Clank, NVP, and the undo log.
//
// Precise variants are the right vehicle for the bit-exactness half: skim
// builds legitimately commit approximate results when a failure takes the
// skim-resume path, so their final memory is allowed to differ from an
// uninterrupted run by design.
func TestKernelsCertifiedAndSurviveInjection(t *testing.T) {
	for _, b := range workloads.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			p := tinyParams(b.Name)
			k := b.Build(p, 8, false)
			c, err := compiler.Compile(k, compiler.Options{Mode: compiler.ModePrecise})
			if err != nil {
				t.Fatalf("compile: %v", err)
			}

			res, err := wncheck.Check(c.Program, wncheck.Options{Crash: true})
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range res.Diags {
				if d.Severity >= wncheck.Error {
					t.Fatalf("static certification failed: %s", d)
				}
			}

			target := faultinject.FromCompiled(b.Name, c, b.Inputs(p, 1))
			for _, rt := range []string{"clank", "nvp", "undolog"} {
				rep, err := faultinject.Run(target,
					faultinject.Config{Policy: policyFactory(rt)},
					faultinject.Schedule{Points: 24})
				if err != nil {
					t.Fatalf("%s: %v", rt, err)
				}
				if !rep.Clean() {
					t.Errorf("%s: %d divergences; first: %s", rt, len(rep.Divergences), rep.Divergences[0])
					continue
				}
				t.Logf("%s: clean over %d kill points (stride ~%d of %d cycles)",
					rt, rep.Points, rep.StrideCycles, rep.GoldenCycles)
			}
		})
	}
}
