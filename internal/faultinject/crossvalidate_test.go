package faultinject_test

import (
	"testing"

	"whatsnext/internal/compiler"
	"whatsnext/internal/faultinject"
	"whatsnext/internal/wncheck"
	"whatsnext/internal/workloads"
)

// tinyParams shrinks each Table I kernel to a size where strided fault
// injection stays fast while still exercising every loop and store pattern
// the full-size kernel has.
func tinyParams(name string) workloads.Params {
	switch name {
	case "Conv2d":
		return workloads.Params{ImgW: 6, ImgH: 6, K: 3}
	case "MatMul":
		return workloads.Params{N: 6}
	case "MatAdd":
		return workloads.Params{N: 8}
	case "Home":
		return workloads.Params{Windows: 4, WindowSize: 8}
	case "Var":
		return workloads.Params{Windows: 4, WindowSize: 8}
	case "NetMotion":
		return workloads.Params{Steps: 48}
	}
	return workloads.Params{}
}

// TestKernelsCertifiedAndSurviveInjection is the kernel-level
// cross-validation: every Table I benchmark, compiled precise, is (a)
// certified crash-consistent by the static analysis — zero error-severity
// findings and an empty flagged-region set in the verification certificate —
// and (b) sound under certificate-driven injection: CrossValidate samples
// instruction boundaries across the run and every one of them, being in
// proven territory, must reproduce the golden memory bit-exactly under
// Clank, NVP, and the undo log.
//
// Precise variants are the right vehicle for the bit-exactness half: skim
// builds legitimately commit approximate results when a failure takes the
// skim-resume path, so their final memory is allowed to differ from an
// uninterrupted run by design.
func TestKernelsCertifiedAndSurviveInjection(t *testing.T) {
	for _, b := range workloads.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			p := tinyParams(b.Name)
			k := b.Build(p, 8, false)
			c, err := compiler.Compile(k, compiler.Options{Mode: compiler.ModePrecise})
			if err != nil {
				t.Fatalf("compile: %v", err)
			}

			res, cert, err := wncheck.Verify(c.Program, wncheck.Options{Crash: true})
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range res.Diags {
				if d.Severity >= wncheck.Error {
					t.Fatalf("static certification failed: %s", d)
				}
			}
			if len(cert.Flagged) > 0 {
				t.Fatalf("certificate is not clean: flagged regions %+v", cert.Flagged)
			}

			target := faultinject.FromCompiled(b.Name, c, b.Inputs(p, 1))
			for _, rt := range []string{"clank", "nvp", "undolog"} {
				rep, err := faultinject.CrossValidate(target,
					faultinject.CrossConfig{
						Config:    faultinject.Config{Policy: policyFactory(rt)},
						MaxPoints: 24,
					}, cert)
				if err != nil {
					t.Fatalf("%s: %v", rt, err)
				}
				if !rep.Validated() {
					t.Errorf("%s: %s; first violation: %s", rt, rep, rep.Violations[0])
					continue
				}
				t.Logf("%s: %d certified boundaries clean over %d golden cycles",
					rt, rep.CertifiedPoints, rep.GoldenCycles)
			}
		})
	}
}
