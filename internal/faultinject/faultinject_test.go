package faultinject_test

import (
	"os"
	"path/filepath"
	"testing"

	"whatsnext/internal/asm"
	"whatsnext/internal/faultinject"
	"whatsnext/internal/intermittent"
	"whatsnext/internal/wncheck"
)

func loadProgram(t *testing.T, file string) *asm.Program {
	t.Helper()
	path := filepath.Join("testdata", file)
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	p, err := asm.AssembleNamed(path, string(src))
	if err != nil {
		t.Fatalf("assemble %s: %v", file, err)
	}
	return p
}

func policyFactory(name string) func() intermittent.Policy {
	switch name {
	case "clank":
		return func() intermittent.Policy { return intermittent.NewClank(intermittent.DefaultClankConfig()) }
	case "nvp":
		return func() intermittent.Policy { return intermittent.NewNVP(intermittent.DefaultNVPConfig()) }
	case "undolog":
		return func() intermittent.Policy { return intermittent.NewUndoLog(intermittent.DefaultUndoLogConfig()) }
	case "naive":
		return func() intermittent.Policy { return intermittent.NewNaive(intermittent.DefaultNaiveConfig()) }
	}
	panic("unknown policy " + name)
}

// TestSeededHazardsFlaggedAndWitnessed is one direction of the
// cross-validation contract: every seeded-hazard program is flagged by the
// static crash analysis AND the injector produces a concrete divergence
// (cycle of failure + first differing word) under the runtimes the hazard
// reaches.
//
// clank_stage.s is deliberately absent under the undo log: its only
// checkpoint is the attach-time one, so a rollback re-executes the whole
// program — including the SRAM store — and the staged value is rebuilt.
// The hazard needs a mid-program checkpoint (Clank's violation
// checkpoint) or in-place resumption (NVP) to be observable.
func TestSeededHazardsFlaggedAndWitnessed(t *testing.T) {
	cases := []struct {
		file     string
		code     string
		runtimes []string
		sched    faultinject.Schedule
	}{
		{
			file: "sram_cross.s", code: wncheck.CodeVolatileCross,
			runtimes: []string{"clank", "nvp", "undolog"},
			// ~12k boundaries: sample 512 of them to keep the test quick.
			sched: faultinject.Schedule{Exhaustive: true, MaxPoints: 512},
		},
		{
			file: "clank_stage.s", code: wncheck.CodeVolatileCross,
			runtimes: []string{"clank", "nvp"},
			sched:    faultinject.Schedule{Exhaustive: true},
		},
		{
			file: "skim_stale_reg.s", code: wncheck.CodeSkimStaleReg,
			runtimes: []string{"clank", "nvp", "undolog"},
			sched:    faultinject.Schedule{Exhaustive: true},
		},
	}
	for _, tc := range cases {
		t.Run(tc.file, func(t *testing.T) {
			p := loadProgram(t, tc.file)

			res, err := wncheck.Check(p, wncheck.Options{Crash: true})
			if err != nil {
				t.Fatal(err)
			}
			flagged := false
			for _, d := range res.Diags {
				if d.Code == tc.code {
					flagged = true
					if d.RegionStart == 0 && d.RegionEnd == 0 {
						t.Errorf("%s finding has no region extent", tc.code)
					}
				}
			}
			if !flagged {
				t.Fatalf("static analysis did not flag %s with %s: %v", tc.file, tc.code, res.Diags)
			}

			target := faultinject.FromProgram(tc.file, p)
			for _, rt := range tc.runtimes {
				rep, err := faultinject.Run(target, faultinject.Config{Policy: policyFactory(rt)}, tc.sched)
				if err != nil {
					t.Fatalf("%s: %v", rt, err)
				}
				if rep.Clean() {
					t.Errorf("%s: injector found no divergence over %d kill points; the static %s flag is unwitnessed",
						rt, rep.Points, tc.code)
					continue
				}
				t.Logf("%s under %s: %d/%d kill points diverge; first witness: %s",
					tc.file, rt, len(rep.Divergences), rep.Points, rep.Divergences[0])
			}
		})
	}
}

// cleanAccum is a read-modify-write NV kernel with no SRAM staging and no
// skim point: the access pattern the runtimes exist to protect. The static
// crash analysis certifies it (no WN10x) and exhaustive injection must
// find zero divergence — the other direction of the contract.
const cleanAccum = `
	MOVI R10, #3
outer:
	MOVI R0, #0
	MOVTI R0, #4096
	MOVI R1, #0
loop:
	LDR R2, [R0, #0]
	ADD R2, R2, R1
	STR R2, [R0, #0]
	ADDI R0, R0, #4
	ADDI R1, R1, #1
	CMPI R1, #8
	BLT loop
	SUBIS R10, R10, #1
	BNE outer
	HALT
`

func TestCleanProgramZeroDivergence(t *testing.T) {
	p, err := asm.Assemble(cleanAccum)
	if err != nil {
		t.Fatal(err)
	}
	res, err := wncheck.Check(p, wncheck.Options{Crash: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range res.Diags {
		if d.Severity >= wncheck.Error {
			t.Fatalf("program expected clean, got %s", d)
		}
	}
	target := faultinject.FromProgram("accum", p)
	for _, rt := range []string{"clank", "nvp", "undolog"} {
		rep, err := faultinject.Run(target, faultinject.Config{Policy: policyFactory(rt)},
			faultinject.Schedule{Exhaustive: true})
		if err != nil {
			t.Fatalf("%s: %v", rt, err)
		}
		if !rep.Clean() {
			t.Errorf("%s: statically-clean program diverged: %s", rt, rep.Divergences[0])
		}
		if rep.Points == 0 {
			t.Errorf("%s: no kill points injected", rt)
		}
	}
}

// Strided schedules must spread kill points across the run and map each to
// the retiring instruction count.
func TestStridedSchedule(t *testing.T) {
	p, err := asm.Assemble(cleanAccum)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := faultinject.Run(faultinject.FromProgram("accum", p),
		faultinject.Config{Policy: policyFactory("nvp")},
		faultinject.Schedule{Points: 7})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Points != 7 {
		t.Fatalf("Points = %d, want 7", rep.Points)
	}
	if !rep.Clean() {
		t.Fatalf("unexpected divergence: %s", rep.Divergences[0])
	}
	if rep.StrideCycles == 0 || rep.StrideCycles >= rep.GoldenCycles {
		t.Fatalf("implausible stride %d for %d golden cycles", rep.StrideCycles, rep.GoldenCycles)
	}
}

// A stride-k schedule is a contract, not a heuristic: the injected kill
// cycles must be exactly k*total/(n+1) for k = 1..n, in order, as recorded
// in Report.Schedule.
func TestStridedScheduleExactCycles(t *testing.T) {
	p, err := asm.Assemble(cleanAccum)
	if err != nil {
		t.Fatal(err)
	}
	const n = 5
	rep, err := faultinject.Run(faultinject.FromProgram("accum", p),
		faultinject.Config{Policy: policyFactory("nvp")},
		faultinject.Schedule{Points: n})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Schedule) != n {
		t.Fatalf("Schedule has %d cycles, want %d: %v", len(rep.Schedule), n, rep.Schedule)
	}
	for k := uint64(1); k <= n; k++ {
		want := k * rep.GoldenCycles / (n + 1)
		if got := rep.Schedule[k-1]; got != want {
			t.Errorf("Schedule[%d] = %d, want %d (k*total/(n+1) with total %d)",
				k-1, got, want, rep.GoldenCycles)
		}
	}
}

// sramStage is a WN103 hazard small enough for a full exhaustive campaign:
// a result staged in volatile SRAM, read back after a windowed delay. Under
// NVP any failure inside the window wipes the staged word.
const sramStage = `
	MOVI R0, #0
	MOVTI R0, #4096
	MOVI R1, #0
	MOVTI R1, #8192
	LDR R2, [R0, #0]
	ADDI R2, R2, #7
	STR R2, [R1, #0]
	MOVI R3, #40
spin:
	SUBIS R3, R3, #1
	BNE spin
	LDR R4, [R1, #0]
	STR R4, [R0, #4]
	HALT
`

// An exhaustive campaign kills at every boundary a strided one samples, so
// its witness set must be a superset of the strided one's: every kill
// instruction the strided schedule found divergent must be divergent in the
// exhaustive report too.
func TestExhaustiveSupersetOfStridedWitnesses(t *testing.T) {
	p, err := asm.Assemble(sramStage)
	if err != nil {
		t.Fatal(err)
	}
	res, err := wncheck.Check(p, wncheck.Options{Crash: true})
	if err != nil {
		t.Fatal(err)
	}
	hasWN103 := false
	for _, d := range res.Diags {
		if d.Code == wncheck.CodeVolatileCross {
			hasWN103 = true
		}
	}
	if !hasWN103 {
		t.Fatalf("seeded program not flagged with WN103: %v", res.Diags)
	}

	target := faultinject.FromProgram("sram_stage", p)
	cfg := faultinject.Config{Policy: policyFactory("nvp")}
	strided, err := faultinject.Run(target, cfg, faultinject.Schedule{Points: 16})
	if err != nil {
		t.Fatal(err)
	}
	exhaustive, err := faultinject.Run(target, cfg, faultinject.Schedule{Exhaustive: true})
	if err != nil {
		t.Fatal(err)
	}
	if strided.Clean() || exhaustive.Clean() {
		t.Fatalf("expected both campaigns to witness the hazard (strided %d, exhaustive %d divergences)",
			len(strided.Divergences), len(exhaustive.Divergences))
	}
	witnessed := make(map[uint64]bool)
	for _, d := range exhaustive.Divergences {
		witnessed[d.KillInstruction] = true
	}
	for _, d := range strided.Divergences {
		if !witnessed[d.KillInstruction] {
			t.Errorf("strided witness at instruction %d (cycle %d) absent from the exhaustive campaign",
				d.KillInstruction, d.KillCycle)
		}
	}
}
