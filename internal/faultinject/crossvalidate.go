package faultinject

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"

	"whatsnext/internal/cpu"
	"whatsnext/internal/energy"
	"whatsnext/internal/isa"
	"whatsnext/internal/mem"
	"whatsnext/internal/wncheck"
)

// Static↔dynamic cross-validation: CrossValidate consumes a wncheck
// verification certificate and checks both directions of the contract it
// states.
//
//   - Soundness of the proof: a power failure at any instruction boundary
//     inside proven (un-flagged) territory must leave the final NV data
//     bit-exact against an uninterrupted golden run. Any divergence there
//     is a Violation — either the analysis or the runtime is wrong.
//   - Non-vacuousness of the findings: every flagged region must be
//     witnessable — some kill whose resume point falls inside the region's
//     hazard window must produce a real divergence, recorded with its kill
//     cycle and first differing word. A flagged region nothing can witness
//     is a false alarm worth investigating (or a region only a weaker
//     runtime than the configured one can expose).
//
// Input locations (CrossConfig.InputWords) extend the oracle from one
// golden run to a small set of worlds: every forced failure advances the
// declared input words by one, modeling an external world that moved on
// while the device was dark. An injected run is then clean iff its final
// NV data (with the input words themselves masked) matches SOME single
// world's golden run — the formal memory-consistency condition. A state
// matching no world is exactly the repeated-input hazard WN105 flags.
type CrossConfig struct {
	Config
	// InputWords lists word-aligned NV data addresses treated as input
	// (sensor/IO) locations: advanced by one on every forced failure and
	// masked from the bit-exact comparison. Should mirror the
	// wncheck.Options.Input ranges the certificate was produced under.
	InputWords []uint32
	// MaxPoints caps the injected boundaries. Boundaries whose resume point
	// falls inside a flagged region's hazard window are always kept; the
	// certified remainder is sampled evenly. Zero means exhaustive.
	MaxPoints int
}

// RegionOutcome is the dynamic fate of one flagged region.
type RegionOutcome struct {
	Region  wncheck.Region
	Witness *Divergence // first divergence whose resume PC fell in the window; nil if none
}

// CrossReport summarizes a cross-validation campaign.
type CrossReport struct {
	Target          string
	Policy          string
	GoldenCycles    uint64
	Worlds          int // golden worlds compared against (1 + one per input advance modeled)
	Points          int // boundaries injected
	CertifiedPoints int // injected boundaries inside proven territory
	// Violations are divergences at certified boundaries: the proof said
	// this could not happen.
	Violations []Divergence
	// Outcomes report each flagged region in certificate order.
	Outcomes []RegionOutcome
	// Residual counts divergences inside flagged windows beyond each
	// region's first witness. Expected for real hazards (many kills in the
	// window diverge); never a soundness problem.
	Residual int

	// ProgressChecked is true when the certificate carried a finite
	// forward-progress bound, enabling the static-vs-dynamic comparison.
	ProgressChecked bool
	// MaxCommitGap is the dynamic maximum cycle distance between
	// consecutive commit boundaries (run start, each executed skim point,
	// halt) observed in the golden run.
	MaxCommitGap uint64
	// StaticRegionBound is the certificate's per-region WCEC bound; the
	// dynamic gap exceeding it is a ProgressViolation — the analyzer's
	// worst case was not an upper bound.
	StaticRegionBound uint64
	ProgressViolation bool
}

// Validated reports whether both directions of the contract held: no
// divergence in proven territory, and every flagged region witnessed.
func (r *CrossReport) Validated() bool {
	if len(r.Violations) > 0 || r.ProgressViolation {
		return false
	}
	for _, o := range r.Outcomes {
		if o.Witness == nil {
			return false
		}
	}
	return true
}

func (r *CrossReport) String() string {
	witnessed := 0
	for _, o := range r.Outcomes {
		if o.Witness != nil {
			witnessed++
		}
	}
	return fmt.Sprintf("crossvalidate: %s under %s: %d points (%d certified clean), %d/%d regions witnessed, %d violations, %d residual",
		r.Target, r.Policy, r.Points, r.CertifiedPoints, witnessed, len(r.Outcomes), len(r.Violations), r.Residual)
}

// goldenWorld is one uninterrupted pure-CPU execution of the target against
// one input world: the per-instruction resume PCs and costs (world 0 only —
// the boundary schedule), and the final NV data.
type goldenWorld struct {
	pcs    []uint32
	costs  []cpu.Cost
	cycles uint64
	data   []byte
	// maxCommitGap is the largest cycle distance between consecutive
	// commit boundaries: run start, each executed skim point (whose own
	// cost is charged to the region it ends), and halt.
	maxCommitGap uint64
}

// GoldenProgress measures the dynamic forward-progress profile of one
// uninterrupted run: the maximum cycle gap between consecutive commit
// boundaries (run start, each executed skim point, halt) and the total
// cycle count. This is the dynamic half of the per-region WCEC contract —
// the gap must never exceed the certificate's static region bound.
func GoldenProgress(t Target, cfg Config) (maxGap, total uint64, err error) {
	if cfg.Mem == (mem.Config{}) {
		cfg.Mem = mem.DefaultConfig()
	}
	g, err := goldenRun(t, cfg, nil, 0)
	if err != nil {
		return 0, 0, err
	}
	return g.maxCommitGap, g.cycles, nil
}

// goldenRun executes the target uninterrupted on a bare CPU — no policy, so
// the per-instruction PC trace is exactly the boundary → resume-PC map the
// injected runs share (kill cycles are pure CPU cycles in both). bump
// advances every input word before the run, producing the alternate-world
// goldens.
func goldenRun(t Target, cfg Config, inputWords []uint32, bump uint32) (*goldenWorld, error) {
	m := mem.New(cfg.Mem)
	if err := m.LoadProgram(t.Image); err != nil {
		return nil, err
	}
	if t.Install != nil {
		if err := t.Install(m); err != nil {
			return nil, err
		}
	}
	if bump != 0 {
		for _, w := range inputWords {
			v, err := m.LoadWord(w)
			if err != nil {
				return nil, fmt.Errorf("input word %#08x: %w", w, err)
			}
			if err := m.StoreWord(w, v+bump); err != nil {
				return nil, err
			}
		}
	}
	c := cpu.New(m)
	c.SetAmenablePCs(t.Amenable)

	g := &goldenWorld{}
	const guard = uint64(1) << 32
	for !c.Halted {
		if g.cycles > guard {
			return nil, fmt.Errorf("golden run did not halt within %d cycles", guard)
		}
		pc := c.Regs[isa.PC]
		cost, err := c.Step()
		if err != nil {
			return nil, err
		}
		g.pcs = append(g.pcs, pc)
		g.costs = append(g.costs, cost)
		g.cycles += uint64(cost.Cycles)
	}
	g.data = make([]byte, cfg.Mem.DataBytes)
	if err := m.ReadData(mem.DataBase, g.data); err != nil {
		return nil, err
	}

	// Measure the dynamic commit gaps against the instruction image: a
	// boundary falls after every executed SKM, plus run start and halt.
	var gap uint64
	for i, pc := range g.pcs {
		gap += uint64(g.costs[i].Cycles)
		off := int(pc - mem.CodeBase)
		if off >= 0 && off+4 <= len(t.Image) {
			w := uint32(t.Image[off]) | uint32(t.Image[off+1])<<8 |
				uint32(t.Image[off+2])<<16 | uint32(t.Image[off+3])<<24
			if in, err := isa.Decode(isa.Word(w)); err == nil && in.Op == isa.OpSkm {
				if gap > g.maxCommitGap {
					g.maxCommitGap = gap
				}
				gap = 0
			}
		}
	}
	if gap > g.maxCommitGap {
		g.maxCommitGap = gap
	}
	return g, nil
}

// maskInputs zeroes the declared input words in a copy of an NV data image,
// so world comparison ignores the input locations themselves (they differ
// by construction after an advance).
func maskInputs(data []byte, inputWords []uint32) []byte {
	if len(inputWords) == 0 {
		return data
	}
	out := append([]byte(nil), data...)
	for _, w := range inputWords {
		off := int(w - mem.DataBase)
		if off >= 0 && off+4 <= len(out) {
			binary.LittleEndian.PutUint32(out[off:], 0)
		}
	}
	return out
}

// hazardWindow reports whether a resume PC falls inside the kill window of
// a flagged region. The window is one instruction wider than the region on
// both sides: killing just past the region's last instruction is what
// exposes a WAR/RMW (the write has landed, replay re-reads it), and killing
// at the first instruction costs nothing to include.
func hazardWindow(r wncheck.Region, pc uint32) bool {
	return pc >= r.Start && pc <= r.End+isa.InstBytes
}

// CrossValidate runs the certificate's contract against the device. The
// certificate must describe t.Image (hashes are checked).
func CrossValidate(t Target, cfg CrossConfig, cert *wncheck.Certificate) (*CrossReport, error) {
	if cert == nil {
		return nil, fmt.Errorf("crossvalidate: nil certificate")
	}
	if cfg.Policy == nil {
		return nil, fmt.Errorf("crossvalidate: Config.Policy is required")
	}
	if cfg.Mem == (mem.Config{}) {
		cfg.Mem = mem.DefaultConfig()
	}
	if cfg.Device == (energy.DeviceConfig{}) {
		cfg.Device = energy.DefaultDeviceConfig()
	}
	sum := sha256.Sum256(t.Image)
	if got := hex.EncodeToString(sum[:]); got != cert.ImageSHA256 {
		return nil, fmt.Errorf("crossvalidate: %s: certificate is for image %s, target is %s", t.Name, cert.ImageSHA256, got)
	}

	world0, err := goldenRun(t, cfg.Config, cfg.InputWords, 0)
	if err != nil {
		return nil, fmt.Errorf("crossvalidate: %s: golden run: %w", t.Name, err)
	}
	goldens := [][]byte{maskInputs(world0.data, cfg.InputWords)}
	if len(cfg.InputWords) > 0 {
		world1, err := goldenRun(t, cfg.Config, cfg.InputWords, 1)
		if err != nil {
			return nil, fmt.Errorf("crossvalidate: %s: world-1 golden run: %w", t.Name, err)
		}
		goldens = append(goldens, maskInputs(world1.data, cfg.InputWords))
	}
	if cfg.Budget == 0 {
		cfg.Budget = 4*world0.cycles + 65536
	}

	rep := &CrossReport{
		Target:       t.Name,
		Policy:       cfg.Policy().Name(),
		GoldenCycles: world0.cycles,
		Worlds:       len(goldens),
		MaxCommitGap: world0.maxCommitGap,
	}
	// Forward-progress direction of the contract: the dynamic worst
	// inter-commit gap must stay within the certified static region bound.
	if pr := cert.Progress; pr != nil && pr.RegionsFinite {
		rep.ProgressChecked = true
		rep.StaticRegionBound = pr.MaxRegionWCEC
		rep.ProgressViolation = world0.maxCommitGap > pr.MaxRegionWCEC
	}
	for _, fr := range cert.Flagged {
		rep.Outcomes = append(rep.Outcomes, RegionOutcome{Region: fr})
	}

	// Every instruction boundary of the golden run: the cycle at which to
	// kill and the PC execution resumes from (= the PC about to execute).
	type boundary struct {
		cycle   uint64
		instr   uint64
		pc      uint32
		flagged bool
	}
	var bounds []boundary
	var cum uint64
	for i, pc := range world0.pcs {
		b := boundary{cycle: cum, instr: uint64(i), pc: pc}
		for _, fr := range cert.Flagged {
			if hazardWindow(fr, pc) {
				b.flagged = true
				break
			}
		}
		bounds = append(bounds, b)
		cum += uint64(world0.costs[i].Cycles)
	}

	selected := bounds
	if cfg.MaxPoints > 0 && len(bounds) > cfg.MaxPoints {
		// Keep every flagged-window boundary (they carry the witnesses),
		// sample the certified remainder evenly.
		var flagged, certified []boundary
		for _, b := range bounds {
			if b.flagged {
				flagged = append(flagged, b)
			} else {
				certified = append(certified, b)
			}
		}
		selected = flagged
		if keep := cfg.MaxPoints - len(flagged); keep > 0 && len(certified) > 0 {
			if keep >= len(certified) {
				selected = append(selected, certified...)
			} else {
				for i := 0; i < keep; i++ {
					selected = append(selected, certified[i*len(certified)/keep])
				}
			}
		}
	}

	var onKill func(*mem.Memory)
	if len(cfg.InputWords) > 0 {
		onKill = func(m *mem.Memory) {
			for _, w := range cfg.InputWords {
				if v, err := m.LoadWord(w); err == nil {
					_ = m.StoreWord(w, v+1)
				}
			}
		}
	}

	for _, b := range selected {
		got, err := runOnce(t, cfg.Config, b.cycle, cfg.Budget, nil, onKill)
		if err != nil {
			return nil, fmt.Errorf("crossvalidate: %s: kill at cycle %d: %w", t.Name, b.cycle, err)
		}
		rep.Points++
		if !b.flagged {
			rep.CertifiedPoints++
		}

		div, diverged := crossDiff(b.cycle, b.instr, goldens, &got, cfg.InputWords)
		if !diverged {
			continue
		}
		if !b.flagged {
			rep.Violations = append(rep.Violations, div)
			continue
		}
		credited := false
		for i := range rep.Outcomes {
			if rep.Outcomes[i].Witness == nil && hazardWindow(rep.Outcomes[i].Region, b.pc) {
				d := div
				rep.Outcomes[i].Witness = &d
				credited = true
			}
		}
		if !credited {
			rep.Residual++
		}
	}
	return rep, nil
}

// crossDiff compares an injected run against every golden world; a run
// matching none of them is a divergence, reported against world 0.
func crossDiff(cycle, instr uint64, goldens [][]byte, got *runResult, inputWords []uint32) (Divergence, bool) {
	if !got.halted {
		return Divergence{KillCycle: cycle, KillInstruction: instr}, true
	}
	masked := maskInputs(got.data, inputWords)
	for _, g := range goldens {
		if bytes.Equal(g, masked) {
			return Divergence{}, false
		}
	}
	d := Divergence{KillCycle: cycle, KillInstruction: instr, Halted: true}
	want := goldens[0]
	first := true
	for off := 0; off+4 <= len(want); off += 4 {
		w := binary.LittleEndian.Uint32(want[off:])
		g := binary.LittleEndian.Uint32(masked[off:])
		if w == g {
			continue
		}
		d.Words++
		if first {
			first = false
			d.Addr = mem.DataBase + uint32(off)
			d.Got, d.Want = g, w
		}
	}
	return d, true
}
