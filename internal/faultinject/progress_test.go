package faultinject_test

import (
	"testing"

	"whatsnext/internal/compiler"
	"whatsnext/internal/cpu"
	"whatsnext/internal/energy"
	"whatsnext/internal/faultinject"
	"whatsnext/internal/intermittent"
	"whatsnext/internal/isa"
	"whatsnext/internal/mem"
	"whatsnext/internal/wncheck"
	"whatsnext/internal/workloads"
)

// TestProgressBoundStaticCoversDynamic is the forward-progress direction of
// the cross-validation contract: for every Table I kernel compiled precise,
// the dynamic maximum inter-commit gap observed in the golden run must stay
// within the certificate's static per-region WCEC bound. The static analysis
// charges every instruction its worst case (branch refills always taken,
// full multiplier latency), so static < dynamic anywhere means the analyzer
// is not an upper bound — a soundness bug, not noise.
func TestProgressBoundStaticCoversDynamic(t *testing.T) {
	for _, b := range workloads.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			p := tinyParams(b.Name)
			c, err := compiler.Compile(b.Build(p, 8, false), compiler.Options{Mode: compiler.ModePrecise})
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			pr := c.Cert.Progress
			if pr == nil || !pr.RegionsFinite {
				t.Fatalf("certificate has no finite progress bound: %+v", pr)
			}

			target := faultinject.FromCompiled(b.Name, c, b.Inputs(p, 1))
			rep, err := faultinject.CrossValidate(target, faultinject.CrossConfig{
				Config:    faultinject.Config{Policy: policyFactory("nvp")},
				MaxPoints: 4,
			}, c.Cert)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.ProgressChecked {
				t.Fatal("progress bound not checked despite finite certificate")
			}
			if rep.StaticRegionBound != pr.MaxRegionWCEC {
				t.Errorf("report bound %d != certificate bound %d", rep.StaticRegionBound, pr.MaxRegionWCEC)
			}
			if rep.MaxCommitGap == 0 {
				t.Error("dynamic max commit gap = 0: golden run measured nothing")
			}
			if rep.ProgressViolation || rep.MaxCommitGap > rep.StaticRegionBound {
				t.Errorf("dynamic gap %d exceeds static region bound %d", rep.MaxCommitGap, rep.StaticRegionBound)
			}
			if rep.ProgressViolation && rep.Validated() {
				t.Error("Validated() ignored a progress violation")
			}
			t.Logf("dynamic max gap %d cycles <= static bound %d cycles (%.1f%% tight)",
				rep.MaxCommitGap, rep.StaticRegionBound,
				100*float64(rep.MaxCommitGap)/float64(rep.StaticRegionBound))
		})
	}
}

// TestProgressGapSplitsAtSkimPoints pins down that the dynamic measurement
// actually resets at commit boundaries: a skim-mode build executes SKM
// points mid-run, so its worst inter-commit gap must be strictly smaller
// than the whole golden run.
func TestProgressGapSplitsAtSkimPoints(t *testing.T) {
	b, err := workloads.ByName("MatMul")
	if err != nil {
		t.Fatal(err)
	}
	p := tinyParams(b.Name)
	c, err := compiler.Compile(b.Build(p, 8, false), compiler.Options{Mode: b.Mode})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	target := faultinject.FromCompiled(b.Name, c, b.Inputs(p, 1))
	rep, err := faultinject.CrossValidate(target, faultinject.CrossConfig{
		Config:    faultinject.Config{Policy: policyFactory("nvp")},
		MaxPoints: 2,
	}, c.Cert)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.ProgressChecked {
		t.Fatal("progress bound not checked")
	}
	if rep.MaxCommitGap == 0 || rep.MaxCommitGap >= rep.GoldenCycles {
		t.Errorf("max commit gap %d should be a proper fraction of the %d-cycle run",
			rep.MaxCommitGap, rep.GoldenCycles)
	}
	if rep.MaxCommitGap > rep.StaticRegionBound {
		t.Errorf("dynamic gap %d exceeds static region bound %d", rep.MaxCommitGap, rep.StaticRegionBound)
	}
}

// TestLivelockFlaggedAndWitnessed closes the loop on WN201: the seeded
// poll-forever program is statically flagged with the exact loop extent,
// refused a finite region bound, and dynamically witnessed livelocking —
// the runner exhausts its cycle budget without halting.
func TestLivelockFlaggedAndWitnessed(t *testing.T) {
	p := loadProgram(t, "livelock.s")

	// Static half: WN201 on exactly the poll loop (LDR..BNE), no finite
	// per-region WCEC.
	res, cert, err := wncheck.Verify(p, wncheck.Options{Progress: true})
	if err != nil {
		t.Fatal(err)
	}
	var d *wncheck.Diagnostic
	for i := range res.Diags {
		if res.Diags[i].Code == wncheck.CodeLivelock {
			d = &res.Diags[i]
			break
		}
	}
	if d == nil {
		t.Fatalf("WN201 not reported; diags: %v", res.Diags)
	}
	if d.Severity != wncheck.Error {
		t.Errorf("WN201 severity = %v, want Error", d.Severity)
	}
	wantLo := uint32(mem.CodeBase + 2*isa.InstBytes)
	wantHi := uint32(mem.CodeBase + 4*isa.InstBytes)
	if d.RegionStart != wantLo || d.RegionEnd != wantHi {
		t.Errorf("WN201 region = %#x..%#x, want %#x..%#x (the poll loop)",
			d.RegionStart, d.RegionEnd, wantLo, wantHi)
	}
	if cert.Progress == nil || cert.Progress.RegionsFinite {
		t.Errorf("certificate claims finite regions for a livelocking program: %+v", cert.Progress)
	}

	// Dynamic half: the program never halts — the runner's cycle budget
	// guard fires, witnessing exactly the livelock the static extent names.
	m := mem.New(mem.DefaultConfig())
	if err := m.LoadProgram(p.Image); err != nil {
		t.Fatal(err)
	}
	c := cpu.New(m)
	c.SetAmenablePCs(p.Amenable)
	supply := energy.NewSupply(energy.DefaultDeviceConfig(), energy.ConstantTrace(1, 10, 1))
	r := intermittent.NewRunner(c, m, supply, intermittent.NewNVP(intermittent.DefaultNVPConfig()))
	r.MaxCycles = 200_000
	if _, err := r.RunToHalt(); err != intermittent.ErrCycleBudget {
		t.Fatalf("RunToHalt err = %v, want ErrCycleBudget (livelock witness)", err)
	}
	if c.Halted {
		t.Fatal("livelock program halted")
	}
}
