; Seeded hazard: a register mutated while a skim point is armed and
; consumed by the skim-resume path.
;
; After SKM arms `commit`, the work loop runs and R1 is incremented. A
; power failure anywhere in that window takes the skim path: Clank and the
; undo log restore the checkpoint-time R1 (0), NVP resumes with whatever
; R1 held at the failure (5 before the increment), and the store at
; `commit` publishes the stale value. wncheck -crash flags the SKM
; (WN104, register R1). Golden result: OUT (data+4) = 6.

	MOVI R0, #0
	MOVTI R0, #4096      ; R0 = data base
	LDR R1, [R0, #0]     ; input word (0)
	.amenable
	ADDI R1, R1, #5      ; anytime work justifying the skim point
	SKM commit
	MOVI R3, #600
work:
	SUBIS R3, R3, #1
	BNE work             ; a window for failures while armed
	ADDI R1, R1, #1      ; mutates R1 with the skim still armed
commit:
	STR R1, [R0, #4]     ; OUT: consumes R1 on the resume path
	HALT
