; Seeded hazard: a non-idempotent NV read-modify-write with no privatization.
;
; COUNT (data+0) is incremented in place: the stored value derives from the
; loaded word, so replaying the sequence double-counts. wncheck -crash flags
; the store (WN108) by value provenance — the store's register traces back
; to the load of the same word. Like WN106, the certified runtimes all
; repair the hazard dynamically; the NAIVE runtime witnesses it: a failure
; after the STR replays from the attach-time checkpoint, re-reads COUNT=1,
; and commits 2.
; Golden result: COUNT (data+0) = 1.

	MOVI R0, #0
	MOVTI R0, #4096      ; R0 = data base
	LDR R1, [R0, #0]     ; read COUNT
	ADDI R1, R1, #1
	STR R1, [R0, #0]     ; WN108: store derives from the loaded word
	HALT
