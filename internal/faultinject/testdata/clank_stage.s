; Seeded hazard: SRAM staging across a Clank violation checkpoint.
;
; The read-modify-write of COUNT (data+8) is an idempotency violation, so
; Clank checkpoints immediately before its store — after the SRAM store
; above it. A power failure between that checkpoint and the SRAM load
; re-executes the tail against wiped SRAM. NVP witnesses the same hazard
; for any failure between the SRAM store and load. wncheck -crash flags
; the load (WN103).
; Golden result: OUT (data+12) = 3, COUNT (data+8) = 1.

	MOVI R0, #0
	MOVTI R0, #4096      ; R0 = data base
	MOVI R1, #0
	MOVTI R1, #8192      ; R1 = SRAM base
	LDR R2, [R0, #0]     ; input word (0)
	ADDI R2, R2, #3
	STR R2, [R1, #4]     ; stage in volatile SRAM
	LDR R5, [R0, #8]
	ADDI R5, R5, #1
	STR R5, [R0, #8]     ; WAR store: Clank checkpoints right before it
	LDR R4, [R1, #4]     ; WN103: reads across the checkpoint
	STR R4, [R0, #12]    ; OUT
	HALT
