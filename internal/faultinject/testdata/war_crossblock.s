; Seeded hazard: a write-after-read at a symbolic address, crossing block
; boundaries, on an amenable path.
;
; The element index is loaded from memory, so the constant propagator cannot
; resolve the address of the LDRX/STRX pair; only the WN106 chain-follower
; sees that both sides use the congruent expression [R0, R9] with neither
; base nor index redefined in between. The path crosses the branch at the
; amenable instruction, so the finding is tainted (Error).
;
; Dynamically the hazard needs the NAIVE runtime: Clank checkpoints ahead of
; the violating store, NVP never re-executes, and the undo log rolls the
; store back, so all three repair it. Naive replays from the attach-time
; checkpoint: a failure after the STRX re-runs the LDRX against the
; overwritten element and commits X+10 instead of X+5.
; Golden result: data+20 = 5.

	MOVI R0, #0
	MOVTI R0, #4096      ; R0 = data base
	LDR R9, [R0, #16]    ; element index from memory (0): statically unknown
	ADDI R9, R9, #20     ; byte offset of the element
	LDRX R2, [R0, R9]    ; read element X
	.amenable
	ADDI R2, R2, #5      ; anytime work on the sample
	STRX R2, [R0, R9]    ; WN106: overwrites the word the LDRX read
	HALT
