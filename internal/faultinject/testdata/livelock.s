; Seeded livelock: an unbounded poll loop with no commit boundary inside.
;
; The loop spins on FLAG (data+0), waiting for an external writer that does
; not exist on this device: FLAG starts at 0 and nothing in the program ever
; stores to it, so the loop's trip count has no static bound and no dynamic
; exit. Because the loop body contains no skim point, a power failure at any
; point inside it resumes at (or before) the loop head with FLAG unchanged —
; the device re-enters the same poll forever and never accumulates forward
; progress. wncheck -wcec flags the exact loop extent (WN201, livelock) and
; refuses to certify a finite per-region WCEC; the dynamic half of the
; contract witnesses the same fact as a run that exhausts any cycle budget
; without halting.
;
; Golden result: none — an uninterrupted run never halts.

	MOVI R0, #0
	MOVTI R0, #4096      ; R0 = data base
poll:
	LDR R1, [R0, #0]     ; FLAG — never written, stays 0
	CMPI R1, #1
	BNE poll             ; WN201: unbounded, boundary-free loop
	MOVI R2, #1
	STR R2, [R0, #4]     ; unreachable publish
	HALT
