; Seeded hazard: a value staged in volatile SRAM across a long window.
;
; The store at the top parks the result in SRAM, a spin loop stretches the
; window past every runtime's watchdog, and the load at the bottom reads it
; back. wncheck -crash flags the load (WN103). Dynamically: NVP resumes
; past the lost store with SRAM wiped; Clank and the undo log take a
; watchdog checkpoint inside the spin, so a failure after that checkpoint
; re-executes only the tail — which re-reads the wiped SRAM word.
; Golden result: OUT (data+4) = 7.

	MOVI R0, #0
	MOVTI R0, #4096      ; R0 = data base
	MOVI R1, #0
	MOVTI R1, #8192      ; R1 = SRAM base
	LDR R2, [R0, #0]     ; input word (0)
	ADDI R2, R2, #7
	STR R2, [R1, #0]     ; stage in volatile SRAM
	MOVI R3, #4000
spin:
	SUBIS R3, R3, #1
	BNE spin             ; ~12000 cycles: outlasts the watchdogs
	LDR R4, [R1, #0]     ; WN103: reads across possible power failures
	STR R4, [R0, #4]     ; OUT
	HALT
