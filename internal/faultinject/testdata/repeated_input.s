; Seeded hazard: the same input word sampled twice across a possible reboot.
;
; IN (data+0) is a declared input location — the external world advances it
; while the device is dark. The program samples it twice with a spin loop in
; between; wncheck -crash -input data+0..+4 flags the second read (WN105).
; Dynamically the hazard is a memory-CONSISTENCY violation, not a WAR: a
; failure between the two reads leaves OUT1 from the old world and OUT2 from
; the new one — a final state matching NO single uninterrupted execution.
; CrossValidate's multi-world oracle (InputWords advanced on every kill,
; final state compared against each world's golden run) witnesses it under
; NVP, which resumes in place: OUT1 keeps the old sample while the second
; read sees the new world. Checkpointing runtimes replay from before the
; first read here (the window is shorter than any watchdog), which re-samples
; both reads consistently; the single-world injector cannot see it at all.
; Golden result (world 0, IN=0): OUT1 (data+4) = 0, OUT2 (data+8) = 0.

	MOVI R0, #0
	MOVTI R0, #4096      ; R0 = data base
	LDR R1, [R0, #0]     ; first sample of IN
	STR R1, [R0, #4]     ; OUT1
	MOVI R3, #100
spin:
	SUBIS R3, R3, #1
	BNE spin             ; window in which the world can move on
	LDR R2, [R0, #0]     ; WN105: second sample of the same input word
	STR R2, [R0, #8]     ; OUT2
	HALT
