; Seeded hazard: an NV commit inside an armed skim interval that the skim
; target observes.
;
; The skim point arms resumption at `commit`, which publishes A (data+0) to
; OUT (data+4). Both stores to A sit inside the armed interval, so a power
; failure between them resumes at `commit` with only the first store
; persisted: OUT = 5 instead of the golden 9. wncheck -crash flags the first
; store (WN107, commit-ordering violation). Every certified runtime
; witnesses it — skim resumption is honored by Clank, NVP, and the undo log
; alike, and none of them can roll an already-persisted NV store back past
; the skim target.
; Golden result: A (data+0) = 9, OUT (data+4) = 9.

	MOVI R0, #0
	MOVTI R0, #4096      ; R0 = data base
	MOVI R4, #5
	MOVI R5, #9
	.amenable
	ADDI R6, R6, #0      ; token anytime work justifying the skim point
	SKM commit           ; outages from here resume at commit
	STR R4, [R0, #0]     ; WN107: A = 5, observed by the skim target
	MOVI R3, #100
spin:
	SUBIS R3, R3, #1
	BNE spin             ; window in which a failure resumes at commit
	STR R5, [R0, #0]     ; A = 9 — the value an uninterrupted run commits
commit:
	MOVI R0, #0
	MOVTI R0, #4096      ; rebuild the base: the target assumes no registers
	LDR R1, [R0, #0]     ; publish whatever A holds
	STR R1, [R0, #4]     ; OUT
	HALT
