// Command wnsim runs one Table I benchmark variant on a simulated
// energy-harvesting device and reports completion time, energy, outages and
// output quality.
//
// Usage:
//
//	wnsim -bench Conv2d -mode swp -bits 4 -proc clank [-trace-seed 3]
//	      [-memo] [-paper-scale] [-seed 1] [-dump-asm]
package main

import (
	"flag"
	"fmt"
	"os"

	"whatsnext/internal/compiler"
	"whatsnext/internal/core"
	"whatsnext/internal/energy"
	_ "whatsnext/internal/nn" // registers the NN benchmark family
	"whatsnext/internal/quality"
	"whatsnext/internal/workloads"
)

func main() {
	var (
		benchName  = flag.String("bench", "Conv2d", "benchmark: Conv2d, MatMul, MatAdd, Home, Var, NetMotion, NNConv, NNFC, NNPoolAvg, NNPoolMax")
		mode       = flag.String("mode", "precise", "precise, swp, swv, or wn (benchmark's own technique)")
		bits       = flag.Int("bits", 8, "subword size (1,2,3,4,8)")
		proc       = flag.String("proc", "clank", "processor runtime: clank or nvp")
		traceSeed  = flag.Int64("trace-seed", 1, "synthetic Wi-Fi trace seed")
		continuous = flag.Bool("continuous", false, "continuous power instead of a harvest trace")
		memo       = flag.Bool("memo", false, "enable the 16-entry memo table + zero skipping")
		paperScale = flag.Bool("paper-scale", false, "paper-size inputs instead of study-scaled")
		seed       = flag.Int64("seed", 1, "input seed")
		dumpAsm    = flag.Bool("dump-asm", false, "print the generated assembly and exit")
		dumpIR     = flag.Bool("dump-ir", false, "print the kernel IR (with pragmas) and exit")
		traceFile  = flag.String("trace-file", "", "CSV harvest trace (as written by wntrace gen)")
		vloads     = flag.Bool("vector-loads", false, "SWP with subword-major vectorized loads (Fig. 12)")
		embed      = flag.Bool("embed", false, "progress-embedding lowering (store-once tiles, sentinel resume scan)")
		passes     = flag.Int("passes", 0, "keep only the most significant N subword passes (0 = all)")
	)
	flag.Parse()
	if err := run(*benchName, *mode, *bits, *proc, *traceSeed, *continuous, *memo, *paperScale, *seed, *dumpAsm, *dumpIR, *traceFile, *vloads, *embed, *passes); err != nil {
		fmt.Fprintln(os.Stderr, "wnsim:", err)
		os.Exit(1)
	}
}

func run(benchName, mode string, bits int, proc string, traceSeed int64, continuous, memo, paperScale bool, seed int64, dumpAsm, dumpIR bool, traceFile string, vloads bool, embed bool, passes int) error {
	b, err := workloads.ByName(benchName)
	if err != nil {
		return err
	}
	p := b.ScaledParams()
	if paperScale {
		p = b.DefaultParams()
	}

	var m compiler.Mode
	switch mode {
	case "precise":
		m = compiler.ModePrecise
	case "swp":
		m = compiler.ModeSWP
	case "swv":
		m = compiler.ModeSWV
	case "wn":
		m = b.Mode
	default:
		return fmt.Errorf("unknown mode %q", mode)
	}

	k := b.Build(p, bits, true)
	if dumpIR {
		fmt.Print(compiler.Dump(k))
		return nil
	}
	c, err := compiler.Compile(k, compiler.Options{Mode: m, VectorLoads: vloads, ProgressEmbed: embed, MaxPasses: passes})
	if err != nil {
		return err
	}
	if dumpAsm {
		fmt.Print(c.Asm)
		return nil
	}

	cfg := core.DefaultConfig()
	cfg.Memoization = memo
	if proc == "nvp" {
		cfg.Processor = core.ProcNVP
	} else if proc != "clank" {
		return fmt.Errorf("unknown processor %q", proc)
	}

	trace := energy.SyntheticWiFiTrace(traceSeed, energy.DefaultTraceConfig())
	if continuous {
		trace = core.ContinuousTrace()
	}
	if traceFile != "" {
		f, err := os.Open(traceFile)
		if err != nil {
			return err
		}
		trace, err = energy.ReadCSV(f)
		f.Close()
		if err != nil {
			return err
		}
	}
	sys := core.NewSystem(cfg, trace)
	if err := sys.Load(c); err != nil {
		return err
	}

	in := b.Inputs(p, seed)
	res, err := sys.RunInput(in)
	if err != nil {
		return err
	}
	out, err := sys.Output(b.Output)
	if err != nil {
		return err
	}
	golden := b.Golden(p, in)
	clk := cfg.Device.ClockHz

	fmt.Printf("benchmark:      %s (%s, %d-bit) on %s\n", b.Name, m, bits, cfg.Processor)
	fmt.Printf("completed:      halted=%v via-skim=%v\n", res.Halted, res.SkimTaken)
	fmt.Printf("active cycles:  %d (%.3f ms)\n", res.CyclesOn, 1e3*float64(res.CyclesOn)/clk)
	fmt.Printf("off cycles:     %d (%.3f ms)\n", res.CyclesOff, 1e3*float64(res.CyclesOff)/clk)
	fmt.Printf("wall clock:     %.3f ms\n", 1e3*float64(res.TotalCycles())/clk)
	fmt.Printf("instructions:   %d\n", res.Instructions)
	fmt.Printf("outages:        %d   checkpoints: %d\n", res.Outages, res.Checkpoints)
	fmt.Printf("energy drawn:   %.2f uJ\n", 1e6*res.EnergyDrawn)
	fmt.Printf("output NRMSE:   %.4f%%\n", quality.NRMSE(out, golden))
	return nil
}
