package main

import (
	"encoding/json"
	"io"

	"whatsnext/internal/wncheck"
)

// SARIF 2.1.0 output, for uploading findings as GitHub code-scanning
// annotations. The mapping (documented in the README wnlint section):
//
//	wncheck code       -> result.ruleId and the driver rule's id
//	formal condition   -> rule.properties.condition
//	severity           -> result.level (info=note, warning=warning, error=error)
//	file:line          -> physicalLocation artifactLocation.uri + region.startLine
//	instruction addr   -> result.properties.pc (hex)
//	region extents     -> result.properties.regionStart/regionEnd (hex)
//	occurrence count   -> result.occurrenceCount
//
// Only the fields code-scanning consumes are emitted; the schema reference
// is pinned in $schema.

type sarifLog struct {
	Version string     `json:"version"`
	Schema  string     `json:"$schema"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string            `json:"id"`
	ShortDescription sarifText         `json:"shortDescription"`
	Properties       map[string]string `json:"properties,omitempty"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID          string          `json:"ruleId"`
	Level           string          `json:"level"`
	Message         sarifText       `json:"message"`
	Locations       []sarifLocation `json:"locations,omitempty"`
	OccurrenceCount int             `json:"occurrenceCount,omitempty"`
	Properties      map[string]any  `json:"properties,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           *sarifRegion  `json:"region,omitempty"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine int `json:"startLine"`
}

func sarifLevel(s wncheck.Severity) string {
	switch {
	case s >= wncheck.Error:
		return "error"
	case s >= wncheck.Warning:
		return "warning"
	}
	return "note"
}

// sarifFinding pairs one diagnostic with the file it came from.
type sarifFinding struct {
	file string
	diag wncheck.Diagnostic
}

// writeSARIF renders all findings of the invocation as one SARIF run.
func writeSARIF(w io.Writer, findings []sarifFinding) error {
	driver := sarifDriver{
		Name:           "wnlint",
		InformationURI: "https://github.com/CMUAbstract/whats-next",
	}
	for _, r := range wncheck.Rules() {
		driver.Rules = append(driver.Rules, sarifRule{
			ID:               r.Code,
			ShortDescription: sarifText{Text: r.Statement},
			Properties:       map[string]string{"condition": r.Condition},
		})
	}
	results := []sarifResult{}
	for _, f := range findings {
		d := f.diag
		res := sarifResult{
			RuleID:          d.Code,
			Level:           sarifLevel(d.Severity),
			Message:         sarifText{Text: d.Msg},
			OccurrenceCount: d.Count,
			Properties:      map[string]any{"pc": d.Addr},
		}
		loc := sarifPhysical{ArtifactLocation: sarifArtifact{URI: f.file}}
		if d.Line > 0 {
			loc.Region = &sarifRegion{StartLine: d.Line}
		}
		res.Locations = []sarifLocation{{PhysicalLocation: loc}}
		if d.RegionStart != 0 || d.RegionEnd != 0 {
			res.Properties["regionStart"] = d.RegionStart
			res.Properties["regionEnd"] = d.RegionEnd
		}
		results = append(results, res)
	}
	log := sarifLog{
		Version: "2.1.0",
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: driver}, Results: results}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
