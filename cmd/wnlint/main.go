// Command wnlint statically verifies WN programs.
//
// It assembles each .s argument (or loads each .bin as a raw image), runs
// the internal/wncheck verifier over it, and prints one diagnostic per line
// in file:line: form. The exit status is 1 when any file produced a
// diagnostic at warning severity or above, 2 on usage or I/O errors.
//
// Usage:
//
//	wnlint [-info] [-skim auto|require|off] [-disable WN101,WN401] file.s ...
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"whatsnext/internal/asm"
	"whatsnext/internal/wncheck"
)

func main() {
	fs := flag.NewFlagSet("wnlint", flag.ExitOnError)
	info := fs.Bool("info", false, "also report info-severity findings (WN102, WN901, WN902)")
	skim := fs.String("skim", "auto", "skim-placement policy: auto, require, or off")
	disable := fs.String("disable", "", "comma-separated diagnostic codes to suppress")
	stats := fs.Bool("stats", false, "print per-file analysis statistics")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: wnlint [-info] [-skim auto|require|off] [-disable codes] [-stats] file.s|file.bin ...")
		fs.PrintDefaults()
	}
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}
	if fs.NArg() == 0 {
		fs.Usage()
		os.Exit(2)
	}

	opts := wncheck.Options{Info: *info}
	switch *skim {
	case "auto":
		opts.Skim = wncheck.SkimAuto
	case "require":
		opts.Skim = wncheck.SkimRequire
	case "off":
		opts.Skim = wncheck.SkimOff
	default:
		fmt.Fprintf(os.Stderr, "wnlint: unknown skim policy %q\n", *skim)
		os.Exit(2)
	}
	if *disable != "" {
		opts.Disable = strings.Split(*disable, ",")
	}

	failed := false
	for _, file := range fs.Args() {
		res, err := lint(file, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wnlint:", err)
			os.Exit(2)
		}
		for _, d := range res.Diags {
			fmt.Println(d.Format(file))
		}
		if *stats {
			fmt.Printf("%s: %d instructions, %d blocks, %d loops, %d unreachable\n",
				file, res.NumInstructions, res.NumBlocks, res.NumLoops, res.UnreachableIns)
		}
		if res.Count(wncheck.Warning) > 0 {
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

// lint loads one file — assembling .s sources, treating anything else as a
// raw program image — and verifies it.
func lint(file string, opts wncheck.Options) (*wncheck.Result, error) {
	data, err := os.ReadFile(file)
	if err != nil {
		return nil, err
	}
	var p *asm.Program
	if strings.HasSuffix(file, ".s") {
		p, err = asm.AssembleNamed(file, string(data))
		if err != nil {
			return nil, err
		}
	} else {
		p = &asm.Program{Image: data}
		// A raw image carries no .amenable marks, so the skim-placement
		// checks would flag every skim point as unjustified. Leave them to
		// an explicit -skim require.
		if opts.Skim == wncheck.SkimAuto {
			opts.Skim = wncheck.SkimOff
		}
	}
	return wncheck.Check(p, opts)
}
