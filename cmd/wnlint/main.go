// Command wnlint statically verifies WN programs.
//
// It assembles each .s argument (or loads each .bin as a raw image), runs
// the internal/wncheck verifier over it, and prints one diagnostic per line
// in file:line: form. -crash adds the crash-consistency analysis (WN103 —
// WN108); -wcec adds the forward-progress certification (WN201 — WN203:
// loop bounds, per-region worst-case energy cycles, livelock extents) and
// -budget N additionally enforces N cycles as the per-region ceiling
// (WN202); -input declares sensor/IO address ranges so the repeated-input
// rule (WN105) has a world model to check against; -only restricts the
// region-carrying diagnostics to a code list. -json switches to
// machine-readable output (one JSON array of findings on stdout), -sarif to
// a SARIF 2.1.0 log suitable for GitHub code scanning, and -cert to the
// wncheck verification certificate (rules run, flagged and proven regions,
// assumptions — the contract faultinject.CrossValidate consumes). -faults N
// additionally runs N strided power-failure injections per file under the
// Clank, NVP, and undo-log runtimes and reports any divergence from the
// uninterrupted run. The exit status is 1 when any file produced a
// diagnostic at warning severity or above (or a fault-injection
// divergence), 2 on usage or I/O errors.
//
// Usage:
//
//	wnlint [-info] [-crash] [-wcec] [-budget N] [-json|-sarif|-cert] [-faults N]
//	       [-skim auto|require|off] [-disable WN101,WN401] [-only WN106]
//	       [-input lo:hi,...] [-stats] file.s ...
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"whatsnext/internal/asm"
	"whatsnext/internal/faultinject"
	"whatsnext/internal/intermittent"
	"whatsnext/internal/wncheck"
)

// jsonFinding is the machine-readable form of one diagnostic.
type jsonFinding struct {
	File        string `json:"file"`
	Line        int    `json:"line,omitempty"`
	PC          uint32 `json:"pc"`
	Code        string `json:"code"`
	Severity    string `json:"severity"`
	Msg         string `json:"msg"`
	Occurrences int    `json:"occurrences"`
	RegionStart uint32 `json:"region_start,omitempty"`
	RegionEnd   uint32 `json:"region_end,omitempty"`
}

func main() {
	fs := flag.NewFlagSet("wnlint", flag.ExitOnError)
	info := fs.Bool("info", false, "also report info-severity findings (WN102, WN901, WN902)")
	crash := fs.Bool("crash", false, "run the crash-consistency analysis (WN103 — WN108)")
	wcec := fs.Bool("wcec", false, "run the forward-progress certification (WN201 — WN203)")
	budget := fs.Uint64("budget", 0, "per-region worst-case cycle ceiling enforced by WN202 (implies -wcec; 0 = off)")
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array instead of text")
	sarifOut := fs.Bool("sarif", false, "emit findings as a SARIF 2.1.0 log instead of text")
	certOut := fs.Bool("cert", false, "emit each file's verification certificate (JSON) instead of findings")
	faults := fs.Int("faults", 0, "also run N strided power-failure injections per file (0 = off)")
	skim := fs.String("skim", "auto", "skim-placement policy: auto, require, or off")
	disable := fs.String("disable", "", "comma-separated diagnostic codes to suppress")
	only := fs.String("only", "", "comma-separated codes: restrict region diagnostics to these")
	input := fs.String("input", "", "comma-separated input (sensor/IO) address ranges lo:hi for WN105")
	stats := fs.Bool("stats", false, "print per-file analysis statistics")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: wnlint [-info] [-crash] [-wcec] [-budget N] [-json|-sarif|-cert] [-faults N] [-skim auto|require|off] [-disable codes] [-only codes] [-input lo:hi,...] [-stats] file.s|file.bin ...")
		fs.PrintDefaults()
	}
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}
	if fs.NArg() == 0 {
		fs.Usage()
		os.Exit(2)
	}
	modes := 0
	for _, m := range []bool{*jsonOut, *sarifOut, *certOut} {
		if m {
			modes++
		}
	}
	if modes > 1 {
		fmt.Fprintln(os.Stderr, "wnlint: -json, -sarif, and -cert are mutually exclusive")
		os.Exit(2)
	}

	opts := wncheck.Options{Info: *info, Crash: *crash,
		Progress: *wcec || *budget > 0, Budget: *budget}
	switch *skim {
	case "auto":
		opts.Skim = wncheck.SkimAuto
	case "require":
		opts.Skim = wncheck.SkimRequire
	case "off":
		opts.Skim = wncheck.SkimOff
	default:
		fmt.Fprintf(os.Stderr, "wnlint: unknown skim policy %q\n", *skim)
		os.Exit(2)
	}
	if *disable != "" {
		opts.Disable = strings.Split(*disable, ",")
	}
	if *only != "" {
		opts.Only = strings.Split(*only, ",")
	}
	if *input != "" {
		ranges, err := parseInputRanges(*input)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wnlint:", err)
			os.Exit(2)
		}
		opts.Input = ranges
	}

	failed := false
	var findings []jsonFinding
	var sarifFindings []sarifFinding
	for _, file := range fs.Args() {
		p, res, cert, err := lint(file, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wnlint:", err)
			os.Exit(2)
		}
		for _, d := range res.Diags {
			switch {
			case *jsonOut:
				findings = append(findings, jsonFinding{
					File:        file,
					Line:        d.Line,
					PC:          d.Addr,
					Code:        d.Code,
					Severity:    d.Severity.String(),
					Msg:         d.Msg,
					Occurrences: d.Count,
					RegionStart: d.RegionStart,
					RegionEnd:   d.RegionEnd,
				})
			case *sarifOut:
				sarifFindings = append(sarifFindings, sarifFinding{file: file, diag: d})
			case *certOut:
				// Certificates own stdout; findings stay visible on stderr.
				fmt.Fprintln(os.Stderr, d.Format(file))
			default:
				fmt.Println(d.Format(file))
			}
		}
		if *certOut {
			b, err := cert.Encode()
			if err != nil {
				fmt.Fprintln(os.Stderr, "wnlint:", err)
				os.Exit(2)
			}
			os.Stdout.Write(b)
		}
		if *stats && !*jsonOut && !*sarifOut && !*certOut {
			fmt.Printf("%s: %d instructions, %d blocks, %d loops, %d unreachable\n",
				file, res.NumInstructions, res.NumBlocks, res.NumLoops, res.UnreachableIns)
		}
		if res.Count(wncheck.Warning) > 0 {
			failed = true
		}
		if *faults > 0 {
			if diverged, err := inject(file, p, *faults, *jsonOut || *sarifOut || *certOut); err != nil {
				fmt.Fprintln(os.Stderr, "wnlint:", err)
				os.Exit(2)
			} else if diverged {
				failed = true
			}
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []jsonFinding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "wnlint:", err)
			os.Exit(2)
		}
	}
	if *sarifOut {
		if err := writeSARIF(os.Stdout, sarifFindings); err != nil {
			fmt.Fprintln(os.Stderr, "wnlint:", err)
			os.Exit(2)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// parseInputRanges parses "lo:hi,lo:hi" (each bound in any strconv base
// form, e.g. 0x10000000) into half-open address ranges.
func parseInputRanges(s string) ([]wncheck.AddrRange, error) {
	var out []wncheck.AddrRange
	for _, part := range strings.Split(s, ",") {
		lo, hi, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("input range %q: want lo:hi", part)
		}
		l, err := strconv.ParseUint(strings.TrimSpace(lo), 0, 32)
		if err != nil {
			return nil, fmt.Errorf("input range %q: %w", part, err)
		}
		h, err := strconv.ParseUint(strings.TrimSpace(hi), 0, 32)
		if err != nil {
			return nil, fmt.Errorf("input range %q: %w", part, err)
		}
		if h <= l {
			return nil, fmt.Errorf("input range %q: empty", part)
		}
		out = append(out, wncheck.AddrRange{Start: uint32(l), End: uint32(h)})
	}
	return out, nil
}

// lint loads one file — assembling .s sources, treating anything else as a
// raw program image — and verifies it.
func lint(file string, opts wncheck.Options) (*asm.Program, *wncheck.Result, *wncheck.Certificate, error) {
	data, err := os.ReadFile(file)
	if err != nil {
		return nil, nil, nil, err
	}
	var p *asm.Program
	if strings.HasSuffix(file, ".s") {
		p, err = asm.AssembleNamed(file, string(data))
		if err != nil {
			return nil, nil, nil, err
		}
	} else {
		p = &asm.Program{Image: data, File: file}
		// A raw image carries no .amenable marks, so the skim-placement
		// checks would flag every skim point as unjustified. Leave them to
		// an explicit -skim require.
		if opts.Skim == wncheck.SkimAuto {
			opts.Skim = wncheck.SkimOff
		}
	}
	res, cert, err := wncheck.Verify(p, opts)
	return p, res, cert, err
}

// inject runs the dynamic oracle: points strided power failures per
// runtime, comparing final memory against an uninterrupted golden run.
// Reports (on stderr, which stays human-readable under -json) and returns
// whether any divergence was witnessed.
func inject(file string, p *asm.Program, points int, quiet bool) (bool, error) {
	policies := []func() intermittent.Policy{
		func() intermittent.Policy { return intermittent.NewClank(intermittent.DefaultClankConfig()) },
		func() intermittent.Policy { return intermittent.NewNVP(intermittent.DefaultNVPConfig()) },
		func() intermittent.Policy { return intermittent.NewUndoLog(intermittent.DefaultUndoLogConfig()) },
	}
	target := faultinject.FromProgram(file, p)
	diverged := false
	for _, mk := range policies {
		rep, err := faultinject.Run(target, faultinject.Config{Policy: mk},
			faultinject.Schedule{Points: points})
		if err != nil {
			return false, fmt.Errorf("%s: fault injection: %w", file, err)
		}
		if !rep.Clean() {
			diverged = true
		}
		if !quiet || !rep.Clean() {
			fmt.Fprintln(os.Stderr, rep)
		}
	}
	return diverged, nil
}
