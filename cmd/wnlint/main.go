// Command wnlint statically verifies WN programs.
//
// It assembles each .s argument (or loads each .bin as a raw image), runs
// the internal/wncheck verifier over it, and prints one diagnostic per line
// in file:line: form. -crash adds the crash-consistency analysis (WN103,
// WN104); -json switches to machine-readable output (one JSON array of
// findings on stdout); -faults N additionally runs N strided power-failure
// injections per file under the Clank, NVP, and undo-log runtimes and
// reports any divergence from the uninterrupted run. The exit status is 1
// when any file produced a diagnostic at warning severity or above (or a
// fault-injection divergence), 2 on usage or I/O errors.
//
// Usage:
//
//	wnlint [-info] [-crash] [-json] [-faults N] [-skim auto|require|off]
//	       [-disable WN101,WN401] [-stats] file.s ...
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"whatsnext/internal/asm"
	"whatsnext/internal/faultinject"
	"whatsnext/internal/intermittent"
	"whatsnext/internal/wncheck"
)

// jsonFinding is the machine-readable form of one diagnostic.
type jsonFinding struct {
	File        string `json:"file"`
	Line        int    `json:"line,omitempty"`
	PC          uint32 `json:"pc"`
	Code        string `json:"code"`
	Severity    string `json:"severity"`
	Msg         string `json:"msg"`
	Occurrences int    `json:"occurrences"`
	RegionStart uint32 `json:"region_start,omitempty"`
	RegionEnd   uint32 `json:"region_end,omitempty"`
}

func main() {
	fs := flag.NewFlagSet("wnlint", flag.ExitOnError)
	info := fs.Bool("info", false, "also report info-severity findings (WN102, WN901, WN902)")
	crash := fs.Bool("crash", false, "run the crash-consistency analysis (WN103, WN104)")
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array instead of text")
	faults := fs.Int("faults", 0, "also run N strided power-failure injections per file (0 = off)")
	skim := fs.String("skim", "auto", "skim-placement policy: auto, require, or off")
	disable := fs.String("disable", "", "comma-separated diagnostic codes to suppress")
	stats := fs.Bool("stats", false, "print per-file analysis statistics")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: wnlint [-info] [-crash] [-json] [-faults N] [-skim auto|require|off] [-disable codes] [-stats] file.s|file.bin ...")
		fs.PrintDefaults()
	}
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}
	if fs.NArg() == 0 {
		fs.Usage()
		os.Exit(2)
	}

	opts := wncheck.Options{Info: *info, Crash: *crash}
	switch *skim {
	case "auto":
		opts.Skim = wncheck.SkimAuto
	case "require":
		opts.Skim = wncheck.SkimRequire
	case "off":
		opts.Skim = wncheck.SkimOff
	default:
		fmt.Fprintf(os.Stderr, "wnlint: unknown skim policy %q\n", *skim)
		os.Exit(2)
	}
	if *disable != "" {
		opts.Disable = strings.Split(*disable, ",")
	}

	failed := false
	var findings []jsonFinding
	for _, file := range fs.Args() {
		p, res, err := lint(file, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wnlint:", err)
			os.Exit(2)
		}
		for _, d := range res.Diags {
			if *jsonOut {
				f := jsonFinding{
					File:        file,
					Line:        d.Line,
					PC:          d.Addr,
					Code:        d.Code,
					Severity:    d.Severity.String(),
					Msg:         d.Msg,
					Occurrences: d.Count,
					RegionStart: d.RegionStart,
					RegionEnd:   d.RegionEnd,
				}
				findings = append(findings, f)
			} else {
				fmt.Println(d.Format(file))
			}
		}
		if *stats && !*jsonOut {
			fmt.Printf("%s: %d instructions, %d blocks, %d loops, %d unreachable\n",
				file, res.NumInstructions, res.NumBlocks, res.NumLoops, res.UnreachableIns)
		}
		if res.Count(wncheck.Warning) > 0 {
			failed = true
		}
		if *faults > 0 {
			if diverged, err := inject(file, p, *faults, *jsonOut); err != nil {
				fmt.Fprintln(os.Stderr, "wnlint:", err)
				os.Exit(2)
			} else if diverged {
				failed = true
			}
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []jsonFinding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "wnlint:", err)
			os.Exit(2)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// lint loads one file — assembling .s sources, treating anything else as a
// raw program image — and verifies it.
func lint(file string, opts wncheck.Options) (*asm.Program, *wncheck.Result, error) {
	data, err := os.ReadFile(file)
	if err != nil {
		return nil, nil, err
	}
	var p *asm.Program
	if strings.HasSuffix(file, ".s") {
		p, err = asm.AssembleNamed(file, string(data))
		if err != nil {
			return nil, nil, err
		}
	} else {
		p = &asm.Program{Image: data}
		// A raw image carries no .amenable marks, so the skim-placement
		// checks would flag every skim point as unjustified. Leave them to
		// an explicit -skim require.
		if opts.Skim == wncheck.SkimAuto {
			opts.Skim = wncheck.SkimOff
		}
	}
	res, err := wncheck.Check(p, opts)
	return p, res, err
}

// inject runs the dynamic oracle: points strided power failures per
// runtime, comparing final memory against an uninterrupted golden run.
// Reports (on stderr, which stays human-readable under -json) and returns
// whether any divergence was witnessed.
func inject(file string, p *asm.Program, points int, quiet bool) (bool, error) {
	policies := []func() intermittent.Policy{
		func() intermittent.Policy { return intermittent.NewClank(intermittent.DefaultClankConfig()) },
		func() intermittent.Policy { return intermittent.NewNVP(intermittent.DefaultNVPConfig()) },
		func() intermittent.Policy { return intermittent.NewUndoLog(intermittent.DefaultUndoLogConfig()) },
	}
	target := faultinject.FromProgram(file, p)
	diverged := false
	for _, mk := range policies {
		rep, err := faultinject.Run(target, faultinject.Config{Policy: mk},
			faultinject.Schedule{Points: points})
		if err != nil {
			return false, fmt.Errorf("%s: fault injection: %w", file, err)
		}
		if !rep.Clean() {
			diverged = true
		}
		if !quiet || !rep.Clean() {
			fmt.Fprintln(os.Stderr, rep)
		}
	}
	return diverged, nil
}
