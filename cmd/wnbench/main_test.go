package main

import (
	"strings"
	"testing"

	"whatsnext/internal/experiments"
)

// resolverCLI maps each spec-resolver experiment to the CLI entries that
// drive it (the speedup resolver backs both figure studies). The no-drift
// test below keeps this map, the resolver registry, and the CLI registry
// in lockstep.
var resolverCLI = map[string][]string{
	"table1":  {"table1"},
	"speedup": {"fig10", "fig11"},
	"nn":      {"nn"},
}

// TestRegistryMatchesResolvers is the no-drift check between the CLI and
// the spec-resolver registry: every experiment a wnserved instance can
// resolve must be driven by a runnable CLI entry, so remote-capable
// studies never silently drop out of `-exp all`, and the map above never
// goes stale in either direction.
func TestRegistryMatchesResolvers(t *testing.T) {
	names := map[string]bool{}
	for _, e := range registry {
		if names[e.name] {
			t.Errorf("duplicate registry entry %q", e.name)
		}
		names[e.name] = true
		if e.desc == "" || e.run == nil {
			t.Errorf("registry entry %q lacks a description or runner", e.name)
		}
	}
	resolvable := experiments.ResolvableExperiments()
	if len(resolvable) != len(resolverCLI) {
		t.Errorf("resolver registry has %d experiments, CLI map covers %d", len(resolvable), len(resolverCLI))
	}
	for _, n := range resolvable {
		clis, ok := resolverCLI[n]
		if !ok {
			t.Errorf("resolver experiment %q has no CLI mapping", n)
			continue
		}
		for _, cli := range clis {
			if !names[cli] {
				t.Errorf("resolver experiment %q maps to unknown CLI entry %q", n, cli)
			}
			if err := validateExp(cli); err != nil {
				t.Errorf("validateExp(%q): %v", cli, err)
			}
		}
	}
}

// TestListExperiments: the -exp list output enumerates exactly the
// registry, one line per entry.
func TestListExperiments(t *testing.T) {
	var sb strings.Builder
	listExperiments(&sb)
	out := sb.String()
	for _, e := range registry {
		if !strings.Contains(out, e.name) || !strings.Contains(out, e.desc) {
			t.Errorf("listing lacks %q", e.name)
		}
	}
	if got := strings.Count(out, "\n"); got != len(registry)+1 {
		t.Errorf("listing has %d lines, want %d", got, len(registry)+1)
	}
}

// TestValidateExpRejectsUnknown: unknown names fail with the valid list.
func TestValidateExpRejectsUnknown(t *testing.T) {
	err := validateExp("nope")
	if err == nil || !strings.Contains(err.Error(), "nn") {
		t.Errorf("err = %v, want mention of valid names", err)
	}
	if err := validateExp("all"); err != nil {
		t.Errorf("validateExp(all): %v", err)
	}
}
