// Command wnbench regenerates the tables and figures of the paper's
// evaluation. With no flags it runs the whole suite at the fast default
// protocol; -exp selects one experiment and -full switches to the paper's
// 3x9-trace protocol at paper-scale inputs.
//
// Usage:
//
//	wnbench [-exp all|table1|fig1|fig2|fig3|fig9|fig10|fig11|fig12|fig13|fig14|fig15|fig16|fig17|ablation|env|areapower]
//	        [-full] [-traces N] [-invocations N] [-out DIR] [-samples N]
package main

import (
	"flag"
	"fmt"
	"os"

	"whatsnext/internal/core"
	"whatsnext/internal/energy"
	"whatsnext/internal/experiments"
	"whatsnext/internal/synthmodel"
)

func main() {
	var (
		exp         = flag.String("exp", "all", "experiment to run")
		full        = flag.Bool("full", false, "paper protocol: 9 traces x 3 invocations, paper-scale inputs")
		traces      = flag.Int("traces", 0, "override number of harvest traces")
		invocations = flag.Int("invocations", 0, "override invocations per trace")
		outDir      = flag.String("out", "out", "directory for generated images and CSVs")
		samples     = flag.Int("samples", 120, "points per runtime-quality curve")
	)
	flag.Parse()

	proto := experiments.DefaultProtocol()
	if *full {
		proto = experiments.FullProtocol()
	}
	if *traces > 0 {
		proto.Traces = *traces
	}
	if *invocations > 0 {
		proto.Invocations = *invocations
	}

	if err := run(*exp, proto, *outDir, *samples); err != nil {
		fmt.Fprintln(os.Stderr, "wnbench:", err)
		os.Exit(1)
	}
}

func run(exp string, proto experiments.Protocol, outDir string, samples int) error {
	w := os.Stdout
	all := exp == "all"
	did := false

	if all || exp == "table1" {
		did = true
		rows, err := experiments.Table1(proto)
		if err != nil {
			return err
		}
		experiments.PrintTable1(w, rows)
		fmt.Fprintln(w)
	}
	if all || exp == "fig2" {
		did = true
		r, err := experiments.Figure2(proto, outDir)
		if err != nil {
			return err
		}
		experiments.PrintFigure2(w, r)
		fmt.Fprintln(w)
	}
	if all || exp == "fig3" {
		did = true
		r, err := experiments.Figure3(7)
		if err != nil {
			return err
		}
		experiments.PrintFigure3(w, r)
		fmt.Fprintln(w)
	}
	if all || exp == "fig9" {
		did = true
		curves, err := experiments.Figure9(proto, samples)
		if err != nil {
			return err
		}
		experiments.PrintFigure9(w, curves)
		if outDir != "" {
			paths, err := experiments.WriteFigure9CSV(outDir, curves)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "wrote %d fig9 CSV series to %s\n\n", len(paths), outDir)
		}
	}
	if all || exp == "fig10" {
		did = true
		rows, err := experiments.SpeedupStudy(core.ProcClank, proto)
		if err != nil {
			return err
		}
		experiments.PrintSpeedup(w, "Figure 10: speedup and quality on the checkpointing volatile processor", rows)
		fmt.Fprintln(w)
	}
	if all || exp == "fig11" {
		did = true
		rows, err := experiments.SpeedupStudy(core.ProcNVP, proto)
		if err != nil {
			return err
		}
		experiments.PrintSpeedup(w, "Figure 11: speedup and quality on the non-volatile processor", rows)
		fmt.Fprintln(w)
	}
	if all || exp == "fig12" {
		did = true
		rows, err := experiments.Figure12(proto)
		if err != nil {
			return err
		}
		experiments.PrintFigure12(w, rows)
		fmt.Fprintln(w)
	}
	if all || exp == "fig13" {
		did = true
		rows, err := experiments.Figure13(proto)
		if err != nil {
			return err
		}
		experiments.PrintFigure13(w, rows)
		fmt.Fprintln(w)
	}
	if all || exp == "fig14" {
		did = true
		prov, unprov, err := experiments.Figure14(proto, samples)
		if err != nil {
			return err
		}
		experiments.PrintFigure14(w, prov, unprov)
		fmt.Fprintln(w)
	}
	if all || exp == "fig15" {
		did = true
		rows, err := experiments.Figure15(proto)
		if err != nil {
			return err
		}
		experiments.PrintFigure15(w, rows)
		fmt.Fprintln(w)
	}
	if all || exp == "fig16" {
		did = true
		r, err := experiments.Figure16(proto, outDir)
		if err != nil {
			return err
		}
		experiments.PrintFigure16(w, r)
		fmt.Fprintln(w)
	}
	if all || exp == "fig17" {
		did = true
		pts, avg, err := experiments.Figure17(proto)
		if err != nil {
			return err
		}
		experiments.PrintFigure17(w, pts, avg)
		fmt.Fprintln(w)
	}
	if all || exp == "fig1" {
		did = true
		rows, err := experiments.StreamStudy(proto, 16)
		if err != nil {
			return err
		}
		experiments.PrintStream(w, rows)
		fmt.Fprintln(w)
	}
	if all || exp == "ablation" {
		did = true
		rows, err := experiments.SkimAblation(proto)
		if err != nil {
			return err
		}
		experiments.PrintSkimAblation(w, rows)
		fmt.Fprintln(w)
		wd, err := experiments.WatchdogSweep(proto, []uint64{1024, 2048, 4096, 8192, 65536})
		if err != nil {
			return err
		}
		experiments.PrintWatchdogSweep(w, wd)
		fmt.Fprintln(w)
		caps, err := experiments.CapacitorSweep(proto, []float64{2, 4.7, 10, 22, 47})
		if err != nil {
			return err
		}
		experiments.PrintCapacitorSweep(w, caps)
		fmt.Fprintln(w)
		memo, err := experiments.MemoEntriesSweep(proto, []int{4, 16, 64, 256})
		if err != nil {
			return err
		}
		experiments.PrintMemoEntriesSweep(w, memo)
		fmt.Fprintln(w)
		cons, err := experiments.ConsistencySweep(proto)
		if err != nil {
			return err
		}
		experiments.PrintConsistencySweep(w, cons)
		fmt.Fprintln(w)
	}
	if all || exp == "env" {
		did = true
		rows, err := experiments.EnvironmentStudy(proto)
		if err != nil {
			return err
		}
		experiments.PrintEnvironments(w, rows)
		fmt.Fprintln(w)
	}
	if all || exp == "areapower" {
		did = true
		fmt.Fprintln(w, synthmodel.Evaluate(energy.DefaultDeviceConfig().ClockHz))
		fmt.Fprintln(w)
	}
	if !did {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}
