// Command wnbench regenerates the tables and figures of the paper's
// evaluation. With no flags it runs the whole suite at the fast default
// protocol; -exp selects one experiment (-exp list enumerates them) and
// -full switches to the paper's 3x9-trace protocol at paper-scale inputs.
//
// Every study fans its independent simulation cells out through the
// internal/sweep job engine: -parallel sets the worker count (default: all
// CPUs), -cache persists results under their spec hash so a repeated run
// skips already-simulated cells, and -progress renders a live done/total
// line while the sweep runs.
//
// With -remote URL the cells are not simulated locally at all: each study's
// specs are submitted to a wnserved instance — or a wncluster coordinator,
// which speaks the same protocol — and the streamed results are reassembled
// in place. The determinism contract makes remote output byte-identical to
// a local run at any topology. Only experiments in the server's resolver
// registry (see `wnserved` startup output) can run remotely; -parallel and
// -cache then apply on the server, not here. -remote-retries bounds how
// often a shed (429) or transiently failing submission is retried, and a
// dropped result stream resumes from its last-seen event.
//
// Usage:
//
//	wnbench [-exp all|list|table1|fig1|...|areapower]
//	        [-backend super|batch|ref]
//	        [-full] [-traces N] [-invocations N] [-out DIR] [-samples N]
//	        [-parallel N] [-cache DIR] [-progress] [-remote URL] [-remote-retries N]
//	        [-faultpoints N] [-faultbench A,B] [-cpuprofile FILE] [-memprofile FILE]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"whatsnext/internal/core"
	"whatsnext/internal/energy"
	"whatsnext/internal/experiments"
	"whatsnext/internal/serve"
	"whatsnext/internal/sweep"
	"whatsnext/internal/synthmodel"
)

// runCtx carries the shared experiment inputs to each registry entry.
type runCtx struct {
	w       io.Writer
	proto   experiments.Protocol
	outDir  string
	samples int

	faultPoints int    // kill points per fault-injection cell
	faultBench  string // comma-separated benchmark filter for -exp faults
}

// expEntry is one runnable experiment in the registry.
type expEntry struct {
	name string
	desc string
	run  func(*runCtx) error
}

// registry lists every experiment in the order `-exp all` runs them.
var registry = []expEntry{
	{"table1", "Table I: benchmark traits (WN-amenable instruction share, baseline runtime)", runTable1},
	{"fig2", "Figure 2: Conv2d output, baseline vs WN at the same truncated cycle budget (writes PGMs)", runFig2},
	{"fig3", "Figure 3: glucose monitoring, input sampling vs anytime processing", runFig3},
	{"fig9", "Figure 9: runtime-quality curves for all six benchmarks at 4/8-bit subwords", runFig9},
	{"fig10", "Figure 10: speedup and quality on the checkpointing volatile processor", runFig10},
	{"fig11", "Figure 11: speedup and quality on the non-volatile processor", runFig11},
	{"fig12", "Figure 12: MatMul SWP with/without subword-vectorized loads", runFig12},
	{"fig13", "Figure 13: Conv2d memoization + zero skipping case study", runFig13},
	{"fig14", "Figure 14: MatAdd provisioned vs unprovisioned vectorized addition", runFig14},
	{"fig15", "Figure 15: Conv2d subword pipelining at 1-4 bit subwords", runFig15},
	{"fig16", "Figure 16: anytime imaging pipeline outputs (writes PGMs)", runFig16},
	{"fig17", "Figure 17: Var streaming, WN estimates vs input sampling", runFig17},
	{"fig1", "Figure 1: streaming arrival-rate study (precise drops inputs, WN keeps up)", runFig1},
	{"ablation", "Ablations: skim points, watchdog interval, capacitor size, memo capacity, consistency mechanisms", runAblation},
	{"env", "Extension: harvest environments (Wi-Fi, solar, thermal, motion)", runEnv},
	{"faults", "Fault injection: strided power failures over the Table I kernels under Clank and NVP", runFaults},
	{"progress", "Forward-progress certification: static per-region WCEC vs measured commit gaps, minimum viable capacitor", runProgress},
	{"nn", "NN inference: accuracy vs energy across subword widths (progress-embedded kernels)", runNN},
	{"areapower", "Section V-D: synthesis area/power/Fmax model", runAreaPower},
}

func main() {
	os.Exit(realMain())
}

// realMain returns the process exit code instead of calling os.Exit, so the
// deferred profile writers installed below always flush.
func realMain() int {
	var (
		exp           = flag.String("exp", "all", "experiment to run ('list' enumerates)")
		full          = flag.Bool("full", false, "paper protocol: 9 traces x 3 invocations, paper-scale inputs")
		traces        = flag.Int("traces", 0, "override number of harvest traces")
		invocations   = flag.Int("invocations", 0, "override invocations per trace")
		outDir        = flag.String("out", "out", "directory for generated images and CSVs")
		samples       = flag.Int("samples", 120, "points per runtime-quality curve")
		parallel      = flag.Int("parallel", 0, "sweep workers (0 = all CPUs, 1 = serial)")
		cacheDir      = flag.String("cache", "", "result-cache directory (repeat runs skip simulated cells)")
		progress      = flag.Bool("progress", false, "render live sweep progress on stderr")
		remote        = flag.String("remote", "", "run sweeps on a wnserved or wncluster instance at this base URL")
		remoteRetries = flag.Int("remote-retries", 3, "retry budget per remote submission/stream (429 and transient failures)")
		backend       = flag.String("backend", "super", "execution engine: super (translated), batch (interpreter), ref (per-instruction)")
		faultPoints   = flag.Int("faultpoints", 32, "kill points per fault-injection cell (-exp faults)")
		faultBench    = flag.String("faultbench", "", "comma-separated benchmark filter for -exp faults (default: all)")
		cpuprofile    = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memprofile    = flag.String("memprofile", "", "write a heap profile taken after the run to this file")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wnbench:", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "wnbench:", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "wnbench:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the profile reflects live heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "wnbench:", err)
			}
		}()
	}

	if b, err := experiments.ParseBackend(*backend); err != nil {
		fmt.Fprintln(os.Stderr, "wnbench:", err)
		return 2
	} else {
		experiments.SetExecBackend(b)
	}

	if *exp == "list" {
		listExperiments(os.Stdout)
		return 0
	}
	if err := validateExp(*exp); err != nil {
		fmt.Fprintln(os.Stderr, "wnbench:", err)
		return 2
	}

	proto := experiments.DefaultProtocol()
	if *full {
		proto = experiments.FullProtocol()
	}
	if *traces > 0 {
		proto.Traces = *traces
	}
	if *invocations > 0 {
		proto.Invocations = *invocations
	}

	opts := sweep.Options{Workers: *parallel}
	if *cacheDir != "" {
		dc, err := sweep.NewDiskCache(*cacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wnbench:", err)
			return 1
		}
		opts.Cache = dc
	}
	if *progress {
		opts.OnProgress = func(p sweep.Progress) {
			fmt.Fprintf(os.Stderr, "\rsweep: %d/%d jobs done (%d cache hits)   ", p.Done, p.Total, p.CacheHits)
		}
	}
	eng := sweep.New(opts)
	proto.Engine = eng
	if *remote != "" {
		cl := serve.NewClient(*remote)
		cl.Retries = *remoteRetries
		proto.Runner = cl
	}

	ctx := &runCtx{w: os.Stdout, proto: proto, outDir: *outDir, samples: *samples,
		faultPoints: *faultPoints, faultBench: *faultBench}
	err := run(*exp, ctx)
	if *progress {
		fmt.Fprintln(os.Stderr)
	}
	if m := eng.Metrics(); m.Submitted > 0 && (*progress || *cacheDir != "") {
		fmt.Fprintf(os.Stderr, "sweep: %s on %d workers\n", m, eng.Workers())
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "wnbench:", err)
		return 1
	}
	return 0
}

// validateExp rejects unknown -exp names, listing the valid ones.
func validateExp(name string) error {
	if name == "all" {
		return nil
	}
	var names []string
	for _, e := range registry {
		if e.name == name {
			return nil
		}
		names = append(names, e.name)
	}
	return fmt.Errorf("unknown experiment %q; valid names: all, list, %s",
		name, strings.Join(names, ", "))
}

// listExperiments prints the registry with one-line descriptions.
func listExperiments(w io.Writer) {
	fmt.Fprintf(w, "%-10s %s\n", "all", "run every experiment below, in order")
	for _, e := range registry {
		fmt.Fprintf(w, "%-10s %s\n", e.name, e.desc)
	}
}

func run(exp string, ctx *runCtx) error {
	for _, e := range registry {
		if exp != "all" && exp != e.name {
			continue
		}
		if err := e.run(ctx); err != nil {
			return err
		}
		fmt.Fprintln(ctx.w)
	}
	return nil
}

func runTable1(c *runCtx) error {
	rows, err := experiments.Table1(c.proto)
	if err != nil {
		return err
	}
	experiments.PrintTable1(c.w, rows)
	return nil
}

func runFig2(c *runCtx) error {
	r, err := experiments.Figure2(c.proto, c.outDir)
	if err != nil {
		return err
	}
	experiments.PrintFigure2(c.w, r)
	return nil
}

func runFig3(c *runCtx) error {
	r, err := experiments.Figure3(7)
	if err != nil {
		return err
	}
	experiments.PrintFigure3(c.w, r)
	return nil
}

func runFig9(c *runCtx) error {
	curves, err := experiments.Figure9(c.proto, c.samples)
	if err != nil {
		return err
	}
	experiments.PrintFigure9(c.w, curves)
	if c.outDir != "" {
		paths, err := experiments.WriteFigure9CSV(c.outDir, curves)
		if err != nil {
			return err
		}
		fmt.Fprintf(c.w, "wrote %d fig9 CSV series to %s\n", len(paths), c.outDir)
	}
	return nil
}

func runFig10(c *runCtx) error {
	rows, err := experiments.SpeedupStudy(core.ProcClank, c.proto)
	if err != nil {
		return err
	}
	experiments.PrintSpeedup(c.w, "Figure 10: speedup and quality on the checkpointing volatile processor", rows)
	return nil
}

func runFig11(c *runCtx) error {
	rows, err := experiments.SpeedupStudy(core.ProcNVP, c.proto)
	if err != nil {
		return err
	}
	experiments.PrintSpeedup(c.w, "Figure 11: speedup and quality on the non-volatile processor", rows)
	return nil
}

func runFig12(c *runCtx) error {
	rows, err := experiments.Figure12(c.proto)
	if err != nil {
		return err
	}
	experiments.PrintFigure12(c.w, rows)
	return nil
}

func runFig13(c *runCtx) error {
	rows, err := experiments.Figure13(c.proto)
	if err != nil {
		return err
	}
	experiments.PrintFigure13(c.w, rows)
	return nil
}

func runFig14(c *runCtx) error {
	prov, unprov, err := experiments.Figure14(c.proto, c.samples)
	if err != nil {
		return err
	}
	experiments.PrintFigure14(c.w, prov, unprov)
	return nil
}

func runFig15(c *runCtx) error {
	rows, err := experiments.Figure15(c.proto)
	if err != nil {
		return err
	}
	experiments.PrintFigure15(c.w, rows)
	return nil
}

func runFig16(c *runCtx) error {
	r, err := experiments.Figure16(c.proto, c.outDir)
	if err != nil {
		return err
	}
	experiments.PrintFigure16(c.w, r)
	return nil
}

func runFig17(c *runCtx) error {
	pts, avg, err := experiments.Figure17(c.proto)
	if err != nil {
		return err
	}
	experiments.PrintFigure17(c.w, pts, avg)
	return nil
}

func runFig1(c *runCtx) error {
	rows, err := experiments.StreamStudy(c.proto, 16)
	if err != nil {
		return err
	}
	experiments.PrintStream(c.w, rows)
	return nil
}

func runAblation(c *runCtx) error {
	rows, err := experiments.SkimAblation(c.proto)
	if err != nil {
		return err
	}
	experiments.PrintSkimAblation(c.w, rows)
	fmt.Fprintln(c.w)
	wd, err := experiments.WatchdogSweep(c.proto, []uint64{1024, 2048, 4096, 8192, 65536})
	if err != nil {
		return err
	}
	experiments.PrintWatchdogSweep(c.w, wd)
	fmt.Fprintln(c.w)
	caps, err := experiments.CapacitorSweep(c.proto, []float64{2, 4.7, 10, 22, 47})
	if err != nil {
		return err
	}
	experiments.PrintCapacitorSweep(c.w, caps)
	fmt.Fprintln(c.w)
	memo, err := experiments.MemoEntriesSweep(c.proto, []int{4, 16, 64, 256})
	if err != nil {
		return err
	}
	experiments.PrintMemoEntriesSweep(c.w, memo)
	fmt.Fprintln(c.w)
	cons, err := experiments.ConsistencySweep(c.proto)
	if err != nil {
		return err
	}
	experiments.PrintConsistencySweep(c.w, cons)
	return nil
}

func runEnv(c *runCtx) error {
	rows, err := experiments.EnvironmentStudy(c.proto)
	if err != nil {
		return err
	}
	experiments.PrintEnvironments(c.w, rows)
	return nil
}

// runFaults drives the injection study and fails the invocation (non-zero
// exit) on any witnessed divergence, so CI catches crash-consistency
// regressions without parsing the table.
func runFaults(c *runCtx) error {
	var benches []string
	if c.faultBench != "" {
		benches = strings.Split(c.faultBench, ",")
	}
	rows, err := experiments.FaultStudy(c.proto, benches, c.faultPoints)
	if err != nil {
		return err
	}
	experiments.PrintFaults(c.w, rows)
	if !experiments.FaultsClean(rows) {
		return fmt.Errorf("fault injection witnessed crash-consistency divergences")
	}
	return nil
}

// runProgress runs locally (no sweep cells): each row is one compile plus
// one golden run, and the study fails the invocation if any dynamic gap
// exceeds its certified static bound.
func runProgress(c *runCtx) error {
	rows, err := experiments.ProgressStudy(c.proto)
	if err != nil {
		return err
	}
	experiments.PrintProgress(c.w, rows)
	return nil
}

func runNN(c *runCtx) error {
	rows, err := experiments.NNStudy(c.proto)
	if err != nil {
		return err
	}
	experiments.PrintNN(c.w, rows)
	return nil
}

func runAreaPower(c *runCtx) error {
	fmt.Fprintln(c.w, synthmodel.Evaluate(energy.DefaultDeviceConfig().ClockHz))
	return nil
}
