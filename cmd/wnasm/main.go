// Command wnasm assembles and disassembles WN programs.
//
// Usage:
//
//	wnasm build prog.s            # assemble; writes prog.bin
//	wnasm build -o out.bin prog.s
//	wnasm build -lint prog.s      # assemble and statically verify
//	wnasm dis prog.bin            # disassemble to stdout
//	wnasm run prog.s              # assemble and run under continuous power
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"whatsnext/internal/asm"
	"whatsnext/internal/cpu"
	"whatsnext/internal/isa"
	"whatsnext/internal/mem"
	"whatsnext/internal/wncheck"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	out := fs.String("o", "", "output file (build)")
	maxInst := fs.Uint64("max-inst", 100_000_000, "instruction budget (run)")
	lint := fs.Bool("lint", false, "run the static verifier after assembling (build, run)")
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}
	if fs.NArg() != 1 {
		usage()
	}
	file := fs.Arg(0)

	var err error
	switch cmd {
	case "build":
		err = build(file, *out, *lint)
	case "dis":
		err = dis(file)
	case "run":
		err = run(file, *maxInst, *lint)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "wnasm:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: wnasm build|dis|run [-o out.bin] [-max-inst N] [-lint] file")
	os.Exit(2)
}

// verify runs the static checker over an assembled program and reports its
// findings; an error is returned when any finding is warning-or-worse.
func verify(file string, p *asm.Program) error {
	res, err := wncheck.Check(p, wncheck.Options{})
	if err != nil {
		return err
	}
	for _, d := range res.Diags {
		fmt.Fprintln(os.Stderr, d.Format(file))
	}
	if n := res.Count(wncheck.Warning); n > 0 {
		return fmt.Errorf("%s: %d lint findings", file, n)
	}
	return nil
}

func build(file, out string, lint bool) error {
	src, err := os.ReadFile(file)
	if err != nil {
		return err
	}
	p, err := asm.AssembleNamed(file, string(src))
	if err != nil {
		return err
	}
	if lint {
		if err := verify(file, p); err != nil {
			return err
		}
	}
	if out == "" {
		out = strings.TrimSuffix(file, ".s") + ".bin"
	}
	if err := os.WriteFile(out, p.Image, 0o644); err != nil {
		return err
	}
	fmt.Printf("%s: %d instructions, %d bytes, %d labels\n",
		out, len(p.Image)/isa.InstBytes, len(p.Image), len(p.Labels))
	return nil
}

func dis(file string) error {
	image, err := os.ReadFile(file)
	if err != nil {
		return err
	}
	fmt.Print(asm.Disassemble(image))
	return nil
}

func run(file string, maxInst uint64, lint bool) error {
	src, err := os.ReadFile(file)
	if err != nil {
		return err
	}
	p, err := asm.AssembleNamed(file, string(src))
	if err != nil {
		return err
	}
	if lint {
		if err := verify(file, p); err != nil {
			return err
		}
	}
	m := mem.New(mem.DefaultConfig())
	if err := m.LoadProgram(p.Image); err != nil {
		return err
	}
	c := cpu.New(m)
	var cycles, instrs uint64
	for !c.Halted {
		cost, err := c.Step()
		if err != nil {
			return err
		}
		cycles += uint64(cost.Cycles)
		if instrs++; instrs > maxInst {
			return fmt.Errorf("instruction budget exhausted after %d instructions", maxInst)
		}
	}
	fmt.Printf("halted after %d instructions, %d cycles\n", instrs, cycles)
	for i := 0; i < 13; i++ {
		fmt.Printf("R%-2d = %#010x (%d)\n", i, c.Regs[i], c.Regs[i])
	}
	return nil
}
