// Command benchjson converts `go test -bench` output into a machine-readable
// JSON summary: per-benchmark ns/op, every custom ReportMetric value, and —
// when the benchmark reports an instruction count — derived instruction
// throughput. CI uses it to publish the hot-loop numbers as an artifact.
//
// Usage:
//
//	go test -bench . ./... | benchjson [-o FILE] [-baseline NAME=NS,...]
//
// The optional -baseline list records a reference ns/op per benchmark and a
// derived speedup, so a checked-in summary documents what the numbers were
// measured against.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result is one benchmark's parsed measurements.
type Result struct {
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
	// InstructionsPerSec is derived from an "instructions/op" metric when
	// the benchmark reports one.
	InstructionsPerSec float64 `json:"instructions_per_sec,omitempty"`
	// BaselineNsPerOp and Speedup are filled from -baseline entries.
	BaselineNsPerOp float64 `json:"baseline_ns_per_op,omitempty"`
	Speedup         float64 `json:"speedup,omitempty"`
}

// benchLine matches e.g. "BenchmarkTableI  40  8789206 ns/op  25.38 avg_amenable_%".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

func parse(lines *bufio.Scanner) (map[string]*Result, error) {
	out := map[string]*Result{}
	for lines.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(lines.Text()))
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		r := &Result{Iterations: iters, Metrics: map[string]float64{}}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			unit := fields[i+1]
			if unit == "ns/op" {
				r.NsPerOp = v
			} else {
				r.Metrics[unit] = v
			}
		}
		if r.NsPerOp == 0 {
			continue
		}
		if n, ok := r.Metrics["instructions/op"]; ok && n > 0 {
			r.InstructionsPerSec = n / r.NsPerOp * 1e9
		}
		if len(r.Metrics) == 0 {
			r.Metrics = nil
		}
		// Keep the last run of a repeated benchmark (e.g. -count>1).
		out[m[1]] = r
	}
	return out, lines.Err()
}

func applyBaselines(results map[string]*Result, spec string) error {
	if spec == "" {
		return nil
	}
	for _, entry := range strings.Split(spec, ",") {
		name, ns, ok := strings.Cut(strings.TrimSpace(entry), "=")
		if !ok {
			return fmt.Errorf("bad -baseline entry %q (want NAME=NS)", entry)
		}
		base, err := strconv.ParseFloat(ns, 64)
		if err != nil {
			return fmt.Errorf("bad -baseline value in %q: %v", entry, err)
		}
		if r, found := results[name]; found && base > 0 && r.NsPerOp > 0 {
			r.BaselineNsPerOp = base
			r.Speedup = base / r.NsPerOp
		}
	}
	return nil
}

func main() {
	var (
		outPath  = flag.String("o", "", "write JSON here instead of stdout")
		baseline = flag.String("baseline", "", "comma-separated NAME=NS_PER_OP reference values")
	)
	flag.Parse()

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	results, err := parse(sc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	if err := applyBaselines(results, *baseline); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	// encoding/json emits map keys sorted, so the output is diff-stable.
	buf, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')

	if *outPath == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*outPath, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
