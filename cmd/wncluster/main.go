// Command wncluster coordinates N wnserved workers into one logical sweep
// engine. It serves the same HTTP API as a single wnserved — POST a batch
// of sweep specs, stream NDJSON progress and results — but consistent-
// hashes each cell's spec key across the worker ring, dispatches the shards
// in parallel, hedges shards stuck on slow or dead workers onto the next
// ring node, lets idle workers steal queued shards, and re-interleaves the
// per-cell results into submission order. Output is byte-identical to a
// single local sweep, at any cluster size — `wnbench -remote` targets a
// coordinator URL transparently.
//
// Cluster-only endpoints:
//
//	GET /v1/cluster     ring membership + per-node health and counters
//	GET /v1/cache/{key} federated result cache (workers read through it)
//	GET /metrics        Prometheus text, with per-node labeled series
//
// Usage:
//
//	wncluster -workers http://h1:8080,http://h2:8080 [-addr :9090]
//	          [-vnodes N] [-shard-cells N] [-hedge D] [-retries N]
//	          [-cache-mem N] [-queue N] [-max-cells N] [-timeout D]
//	          [-drain D] [-quiet]
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"whatsnext/internal/cluster"
	"whatsnext/internal/experiments"
	"whatsnext/internal/serve"
	"whatsnext/internal/sweep"
)

func main() {
	os.Exit(realMain())
}

func realMain() int {
	var (
		addr       = flag.String("addr", ":9090", "listen address (use :0 for an ephemeral port)")
		workers    = flag.String("workers", "", "comma-separated wnserved base URLs (required)")
		vnodes     = flag.Int("vnodes", 64, "virtual ring points per worker")
		shardCells = flag.Int("shard-cells", 4, "cells per dispatched shard (steal/hedge granularity)")
		hedge      = flag.Duration("hedge", 10*time.Second, "duplicate a shard onto the next ring node after this long")
		retries    = flag.Int("retries", 2, "per-shard HTTP retries against one worker (429/transport)")
		cacheMem   = flag.Int("cache-mem", 16384, "federated result cache entries (0 = unbounded)")
		queue      = flag.Int("queue", 16, "job queue depth before submissions are shed with 429")
		maxCells   = flag.Int("max-cells", 4096, "largest accepted batch")
		timeout    = flag.Duration("timeout", 0, "default per-job deadline (0 = none)")
		drain      = flag.Duration("drain", 30*time.Second, "graceful shutdown budget")
		quiet      = flag.Bool("quiet", false, "suppress request logs")
	)
	flag.Parse()

	urls := splitWorkers(*workers)
	if len(urls) == 0 {
		fmt.Fprintln(os.Stderr, "wncluster: -workers is required (comma-separated wnserved URLs)")
		return 2
	}

	var logger *slog.Logger
	if !*quiet {
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}

	members := make([]cluster.Worker, len(urls))
	for i, u := range urls {
		cl := serve.NewClient(u)
		cl.Retries = *retries
		members[i] = cluster.Worker{Name: cl.Base(), Runner: cl}
	}

	coord, err := cluster.New(cluster.Config{
		Workers:        members,
		Resolver:       experiments.ResolveSpec,
		VirtualNodes:   *vnodes,
		ShardCells:     *shardCells,
		HedgeAfter:     *hedge,
		Cache:          sweep.NewMemoryCacheSize(*cacheMem),
		QueueDepth:     *queue,
		MaxCells:       *maxCells,
		DefaultTimeout: *timeout,
		Logger:         logger,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "wncluster:", err)
		return 1
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wncluster:", err)
		return 1
	}
	// Print the resolved address on stdout so scripts can parse the port
	// when listening on :0.
	fmt.Printf("wncluster: listening on http://%s\n", hostport(ln.Addr().(*net.TCPAddr)))
	fmt.Printf("wncluster: ring of %d workers (%d vnodes each): %s\n",
		len(urls), *vnodes, strings.Join(urls, ", "))

	hs := &http.Server{Handler: coord.Handler()}
	httpErr := make(chan error, 1)
	go func() { httpErr <- hs.Serve(ln) }()

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigs:
		fmt.Printf("wncluster: %s: draining (budget %s; signal again to abort)\n", sig, *drain)
	case err := <-httpErr:
		fmt.Fprintln(os.Stderr, "wncluster:", err)
		return 1
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	go func() {
		<-sigs
		fmt.Println("wncluster: aborting in-flight work")
		cancel()
	}()
	if err := coord.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "wncluster: drain cut short:", err)
	}
	hs.Shutdown(context.Background())
	fmt.Println("wncluster: bye")
	return 0
}

// splitWorkers parses the comma-separated worker list, dropping empties.
func splitWorkers(s string) []string {
	var out []string
	for _, u := range strings.Split(s, ",") {
		if u = strings.TrimSpace(u); u != "" {
			out = append(out, u)
		}
	}
	return out
}

// hostport renders a dialable address: a wildcard listen comes back as
// localhost so the printed URL works directly in curl.
func hostport(a *net.TCPAddr) string {
	if a.IP == nil || a.IP.IsUnspecified() {
		return fmt.Sprintf("localhost:%d", a.Port)
	}
	return a.String()
}
