// Command wntrace generates and inspects synthetic Wi-Fi harvest traces.
//
// Usage:
//
//	wntrace gen -seed 3 -seconds 40 > trace.csv
//	wntrace info trace.csv
//	wntrace sim -seed 3            # report on/off statistics on the default device
package main

import (
	"flag"
	"fmt"
	"os"

	"whatsnext/internal/energy"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	seed := fs.Int64("seed", 1, "trace seed")
	seconds := fs.Float64("seconds", 40, "trace duration")
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}

	var err error
	switch cmd {
	case "gen":
		cfg := energy.DefaultTraceConfig()
		cfg.Seconds = *seconds
		err = energy.SyntheticWiFiTrace(*seed, cfg).WriteCSV(os.Stdout)
	case "info":
		if fs.NArg() != 1 {
			usage()
		}
		err = info(fs.Arg(0))
	case "sim":
		cfg := energy.DefaultTraceConfig()
		cfg.Seconds = *seconds
		err = sim(energy.SyntheticWiFiTrace(*seed, cfg))
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "wntrace:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: wntrace gen|info|sim [-seed N] [-seconds S] [file]")
	os.Exit(2)
}

func info(file string) error {
	f, err := os.Open(file)
	if err != nil {
		return err
	}
	defer f.Close()
	t, err := energy.ReadCSV(f)
	if err != nil {
		return err
	}
	fmt.Printf("samples:     %d at %.0f Hz\n", len(t.Power), t.SampleHz)
	fmt.Printf("duration:    %.2f s\n", t.Duration())
	fmt.Printf("mean power:  %.1f uW\n", 1e6*t.MeanPower())
	return nil
}

// sim runs the device against the trace with a steady full-speed load and
// reports the resulting duty cycle — a quick check that a trace produces
// the paper's millisecond-scale active periods.
func sim(t *energy.Trace) error {
	dev := energy.DefaultDeviceConfig()
	s := energy.NewSupply(dev, t)
	horizon := uint64(t.Duration() * dev.ClockHz)
	for s.TotalCycles() < horizon {
		if !s.Spend(64, 0) {
			if _, ok := s.WaitForPower(); !ok {
				return fmt.Errorf("trace cannot recharge the device")
			}
		}
	}
	on, off := s.CyclesOn, s.CyclesOff
	fmt.Printf("device:        %.0f MHz, %.0f uF, %.1f nJ/cycle\n",
		dev.ClockHz/1e6, dev.CapacitanceF*1e6, dev.EnergyPerCycle*1e9)
	fmt.Printf("usable charge: %.1f uJ (%d cycles, %.2f ms)\n",
		1e6*dev.UsableEnergy(), dev.CyclesPerCharge(), 1e3*float64(dev.CyclesPerCharge())/dev.ClockHz)
	fmt.Printf("active:        %.1f%% duty (%d on / %d off cycles)\n",
		100*float64(on)/float64(on+off), on, off)
	fmt.Printf("outages:       %d (mean active period %.2f ms)\n",
		s.Outages, 1e3*float64(on)/float64(max64(1, s.Outages))/dev.ClockHz)
	return nil
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
