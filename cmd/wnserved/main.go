// Command wnserved serves the sweep engine over HTTP: a
// simulation-as-a-service daemon that accepts batches of sweep specs,
// reconstructs each cell from the experiments resolver registry, runs them
// through one shared bounded worker pool, and streams per-cell progress and
// results as NDJSON. Results are byte-identical to a local sweep, so
// `wnbench -remote` can target it transparently.
//
// Endpoints:
//
//	POST /v1/jobs              submit {"specs":[...], "timeout":"30s"}
//	GET  /v1/jobs              list known jobs
//	GET  /v1/jobs/{id}         job status (+results when done)
//	GET  /v1/jobs/{id}/stream  NDJSON progress/result/done events
//	GET  /v1/cache/{key}       result-cache peek (cluster cache federation)
//	GET  /metrics              Prometheus text exposition
//	GET  /healthz, /readyz     liveness / readiness (503 while draining)
//
// With -cache-upstream URL the result cache reads through to another node's
// /v1/cache/{key} endpoint — typically the wncluster coordinator, which has
// merged every result any worker produced — so a worker only simulates a
// cell no cluster member has seen. Writes stay local.
//
// SIGINT/SIGTERM starts a graceful drain: new submissions are shed with
// 429 while accepted jobs finish, bounded by -drain; a second signal
// aborts the in-flight sweep immediately.
//
// Usage:
//
//	wnserved [-addr :8080] [-parallel N] [-cache DIR] [-cache-mem N]
//	         [-cache-upstream URL] [-queue N] [-max-cells N] [-timeout D] [-drain D]
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"whatsnext/internal/experiments"
	"whatsnext/internal/serve"
	"whatsnext/internal/sweep"
)

func main() {
	os.Exit(realMain())
}

func realMain() int {
	var (
		addr     = flag.String("addr", ":8080", "listen address (use :0 for an ephemeral port)")
		parallel = flag.Int("parallel", 0, "sweep workers shared by all jobs (0 = all CPUs)")
		cacheDir = flag.String("cache", "", "persist results on disk under this directory")
		cacheMem = flag.Int("cache-mem", 4096, "in-memory result cache entries (0 = unbounded)")
		upstream = flag.String("cache-upstream", "", "read through to this node's /v1/cache/{key} on local cache misses")
		queue    = flag.Int("queue", 16, "job queue depth before submissions are shed with 429")
		maxCells = flag.Int("max-cells", 4096, "largest accepted batch")
		timeout  = flag.Duration("timeout", 0, "default per-job deadline (0 = none)")
		drain    = flag.Duration("drain", 30*time.Second, "graceful shutdown budget")
		quiet    = flag.Bool("quiet", false, "suppress request logs")
	)
	flag.Parse()

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	if *quiet {
		logger = nil
	}

	var cache sweep.Cache
	if *cacheDir != "" {
		dc, err := sweep.NewDiskCacheSize(*cacheDir, *cacheMem)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wnserved:", err)
			return 1
		}
		cache = dc
	} else {
		cache = sweep.NewMemoryCacheSize(*cacheMem)
	}
	if *upstream != "" {
		cache = serve.NewFederatedCache(cache, *upstream, 0)
	}

	srv, err := serve.New(serve.Config{
		Resolver:       experiments.ResolveSpec,
		Workers:        *parallel,
		Cache:          cache,
		QueueDepth:     *queue,
		MaxCells:       *maxCells,
		DefaultTimeout: *timeout,
		Logger:         logger,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "wnserved:", err)
		return 1
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wnserved:", err)
		return 1
	}
	// Print the resolved address on stdout so scripts can parse the port
	// when listening on :0.
	fmt.Printf("wnserved: listening on http://%s\n", hostport(ln.Addr().(*net.TCPAddr)))
	fmt.Printf("wnserved: resolvable experiments: %s\n",
		strings.Join(experiments.ResolvableExperiments(), ", "))

	hs := &http.Server{Handler: srv.Handler()}
	httpErr := make(chan error, 1)
	go func() { httpErr <- hs.Serve(ln) }()

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigs:
		fmt.Printf("wnserved: %s: draining (budget %s; signal again to abort)\n", sig, *drain)
	case err := <-httpErr:
		fmt.Fprintln(os.Stderr, "wnserved:", err)
		return 1
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	go func() {
		<-sigs
		fmt.Println("wnserved: aborting in-flight work")
		cancel()
	}()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "wnserved: drain cut short:", err)
	}
	hs.Shutdown(context.Background())
	fmt.Println("wnserved: bye")
	return 0
}

// hostport renders a dialable address: a wildcard listen comes back as
// localhost so the printed URL works directly in curl.
func hostport(a *net.TCPAddr) string {
	if a.IP == nil || a.IP.IsUnspecified() {
		return fmt.Sprintf("localhost:%d", a.Port)
	}
	return a.String()
}
