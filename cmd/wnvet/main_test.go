package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func lintSrc(t *testing.T, src string) []finding {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "x.go")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	fs, err := lintFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func msgs(fs []finding) string {
	var b strings.Builder
	for _, f := range fs {
		b.WriteString(f.msg)
		b.WriteByte('\n')
	}
	return b.String()
}

func TestFlagsTimeNowAndSince(t *testing.T) {
	fs := lintSrc(t, `package p

import "time"

func f() time.Duration {
	start := time.Now()
	return time.Since(start)
}
`)
	if len(fs) != 2 {
		t.Fatalf("got %d findings, want 2:\n%s", len(fs), msgs(fs))
	}
	if !strings.Contains(fs[0].msg, "time.Now") || !strings.Contains(fs[1].msg, "time.Since") {
		t.Errorf("unexpected messages:\n%s", msgs(fs))
	}
}

func TestAllowDirectiveSuppresses(t *testing.T) {
	fs := lintSrc(t, `package p

import "time"

func f() time.Time {
	return time.Now() //wnvet:allow metrics only
}
`)
	if len(fs) != 0 {
		t.Fatalf("allow directive ignored:\n%s", msgs(fs))
	}
}

func TestFlagsRenamedTimeImport(t *testing.T) {
	fs := lintSrc(t, `package p

import clock "time"

func f() clock.Time { return clock.Now() }
`)
	if len(fs) != 1 || !strings.Contains(fs[0].msg, "clock.Now") {
		t.Fatalf("renamed import not tracked:\n%s", msgs(fs))
	}
}

func TestIgnoresShadowedTime(t *testing.T) {
	fs := lintSrc(t, `package p

type clock struct{}

func (clock) Now() int { return 0 }

func f() int {
	var time clock
	return time.Now()
}
`)
	if len(fs) != 0 {
		t.Fatalf("shadowed identifier flagged:\n%s", msgs(fs))
	}
}

func TestFlagsMathRandImport(t *testing.T) {
	for _, pkg := range []string{"math/rand", "math/rand/v2"} {
		fs := lintSrc(t, `package p

import "`+pkg+`"

var x = rand.Int()
`)
		if len(fs) != 1 || !strings.Contains(fs[0].msg, pkg) {
			t.Fatalf("%s import not flagged:\n%s", pkg, msgs(fs))
		}
	}
}

func TestFlagsMapRangePrinting(t *testing.T) {
	fs := lintSrc(t, `package p

import "fmt"

func f() {
	m := make(map[string]int)
	for k, v := range m {
		fmt.Println(k, v)
	}
}
`)
	if len(fs) != 1 || !strings.Contains(fs[0].msg, "iteration order") {
		t.Fatalf("map-range printing not flagged:\n%s", msgs(fs))
	}
}

func TestMapRangeWithoutOutputClean(t *testing.T) {
	fs := lintSrc(t, `package p

func f() int {
	m := map[string]int{"a": 1}
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}
`)
	if len(fs) != 0 {
		t.Fatalf("order-insensitive map range flagged:\n%s", msgs(fs))
	}
}

func TestSliceRangePrintingClean(t *testing.T) {
	fs := lintSrc(t, `package p

import "fmt"

func f() {
	s := []int{1, 2}
	for _, v := range s {
		fmt.Println(v)
	}
}
`)
	if len(fs) != 0 {
		t.Fatalf("slice range flagged as map:\n%s", msgs(fs))
	}
}

func TestVarDeclMapTracked(t *testing.T) {
	fs := lintSrc(t, `package p

import "fmt"

var reg map[string]int

func f() {
	for k := range reg {
		fmt.Println(k)
	}
}
`)
	if len(fs) != 1 {
		t.Fatalf("var-declared map not tracked:\n%s", msgs(fs))
	}
}

// TestRepoPackagesClean pins the invariant the CI lint job enforces: the
// determinism-critical packages carry no unwaived findings.
func TestRepoPackagesClean(t *testing.T) {
	for _, dir := range defaultDirs {
		fs, err := lintDir(filepath.Join("..", "..", dir))
		if err != nil {
			t.Fatal(err)
		}
		if len(fs) != 0 {
			t.Errorf("%s:\n%s", dir, msgs(fs))
		}
	}
}
