// Command wnvet is a determinism linter for the simulation packages.
//
// The sweep engine's result cache, the remote execution protocol, and the
// certificate byte-stability guarantee all rest on one invariant: a study
// cell's output is a pure function of its spec. wnvet walks the Go sources
// of the packages named on the command line (defaulting to the packages
// that carry the invariant) and flags the three ways it historically
// breaks:
//
//   - calls to time.Now / time.Since — wall-clock values leaking into
//     results or hashes;
//   - imports of math/rand (and math/rand/v2) — unseeded or
//     process-global randomness in simulation code;
//   - ranging over a map while directly producing output (fmt printing or
//     building a string) in the loop body — Go's randomized map iteration
//     order makes the rendered output differ run to run.
//
// A finding is suppressed by a trailing `//wnvet:allow <reason>` comment on
// the offending line, recording why the use is benign (e.g. wall-clock
// metrics that never enter results). Test files are skipped. The exit
// status is 1 when any finding survives suppression, 2 on usage or parse
// errors.
//
// Usage:
//
//	wnvet [package-dir ...]
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// defaultDirs are the packages whose determinism the caches and the remote
// protocol depend on.
var defaultDirs = []string{"internal/sweep", "internal/experiments", "internal/wncheck"}

func main() {
	dirs := os.Args[1:]
	if len(dirs) == 0 {
		dirs = defaultDirs
	}
	var findings []finding
	for _, dir := range dirs {
		fs, err := lintDir(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wnvet:", err)
			os.Exit(2)
		}
		findings = append(findings, fs...)
	}
	sort.Slice(findings, func(i, j int) bool {
		if findings[i].pos.Filename != findings[j].pos.Filename {
			return findings[i].pos.Filename < findings[j].pos.Filename
		}
		return findings[i].pos.Line < findings[j].pos.Line
	})
	for _, f := range findings {
		fmt.Printf("%s:%d: %s\n", f.pos.Filename, f.pos.Line, f.msg)
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

type finding struct {
	pos token.Position
	msg string
}

// lintDir parses every non-test .go file in dir and returns the findings
// that are not suppressed by a //wnvet:allow comment on their line.
func lintDir(dir string) ([]finding, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var findings []finding
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		fs, err := lintFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		findings = append(findings, fs...)
	}
	return findings, nil
}

func lintFile(path string) ([]finding, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		return nil, err
	}

	// allowed collects the lines carrying a //wnvet:allow directive; a
	// finding on such a line is intentionally waived.
	allowed := map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, "//wnvet:allow") {
				allowed[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	report := func(pos token.Pos, format string, args ...any) []finding {
		p := fset.Position(pos)
		if allowed[p.Line] {
			return nil
		}
		return []finding{{pos: p, msg: fmt.Sprintf(format, args...)}}
	}

	var findings []finding

	// timePkg is the local name the wall-clock package is imported under.
	timePkg := ""
	for _, imp := range f.Imports {
		switch strings.Trim(imp.Path.Value, `"`) {
		case "math/rand", "math/rand/v2":
			findings = append(findings, report(imp.Pos(),
				"import of %s: simulation code must derive randomness from the spec seed", imp.Path.Value)...)
		case "time":
			timePkg = "time"
			if imp.Name != nil {
				timePkg = imp.Name.Name
			}
		}
	}

	maps := mapIdents(f)
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if timePkg == "" {
				return true
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if id, ok := sel.X.(*ast.Ident); ok && id.Name == timePkg && id.Obj == nil {
					if sel.Sel.Name == "Now" || sel.Sel.Name == "Since" {
						findings = append(findings, report(n.Pos(),
							"call to %s.%s: wall-clock time is nondeterministic across runs", timePkg, sel.Sel.Name)...)
					}
				}
			}
		case *ast.RangeStmt:
			id, ok := n.X.(*ast.Ident)
			if !ok || !maps[id.Name] {
				return true
			}
			if printsOutput(n.Body) {
				findings = append(findings, report(n.Pos(),
					"ranging over map %s while printing: iteration order is randomized; sort the keys first", id.Name)...)
			}
		}
		return true
	})
	return findings, nil
}

// mapIdents scans the file for identifiers that are syntactically known to
// hold maps: `var x map[...]`, `x := make(map[...], ...)`, and map composite
// literals. Without full type checking this undercounts (fields, function
// results), but it is exact on the local idiom the rule exists to catch and
// never false-positives on slices.
func mapIdents(f *ast.File) map[string]bool {
	maps := map[string]bool{}
	isMakeMap := func(e ast.Expr) bool {
		switch e := e.(type) {
		case *ast.MapType:
			return true
		case *ast.CompositeLit:
			_, ok := e.Type.(*ast.MapType)
			return ok
		case *ast.CallExpr:
			if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "make" && len(e.Args) > 0 {
				_, ok := e.Args[0].(*ast.MapType)
				return ok
			}
		}
		return false
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				if id, ok := lhs.(*ast.Ident); ok && isMakeMap(n.Rhs[i]) {
					maps[id.Name] = true
				}
			}
		case *ast.ValueSpec:
			if _, ok := n.Type.(*ast.MapType); ok {
				for _, id := range n.Names {
					maps[id.Name] = true
				}
			}
			for i, v := range n.Values {
				if i < len(n.Names) && isMakeMap(v) {
					maps[n.Names[i].Name] = true
				}
			}
		}
		return true
	})
	return maps
}

// printsOutput reports whether the block directly renders output: a call to
// any fmt printing function, or a strings.Builder/bytes.Buffer write.
func printsOutput(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok && id.Name == "fmt" && id.Obj == nil &&
			strings.Contains(sel.Sel.Name, "rint") { // Print*, Fprint*, Sprint*
			found = true
			return false
		}
		if strings.HasPrefix(sel.Sel.Name, "Write") {
			found = true
			return false
		}
		return true
	})
	return found
}
