// Glucose: the Section II / Figure 3 case study as a runnable application.
// A battery-free glucose monitor receives a reading every 15 minutes. With
// conventional precise processing it can only afford a fraction of the
// readings (input sampling) and slides past two short hypoglycemic dips;
// with What's Next anytime processing it produces a slightly-approximate
// reading for every sample and catches both.
//
//	go run ./examples/glucose
package main

import (
	"fmt"
	"log"
	"strings"

	"whatsnext/internal/experiments"
)

func main() {
	res, err := experiments.Figure3(7)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("glucose monitor on harvested power — %d readings, 15-minute cadence\n", len(res.Readings))
	fmt.Printf("precise reading: %d cycles; anytime 4-bit first pass: %d cycles\n\n", res.PreciseCost, res.AnytimeCost)

	fmt.Println("time   clinical  sampled  anytime   (* = below the 55 mg/dL danger line)")
	for _, r := range res.Readings {
		mark := func(v float64) string {
			if v >= 0 && v < 55 {
				return "*"
			}
			return " "
		}
		sampled := "   --  "
		if r.Sampled >= 0 {
			sampled = fmt.Sprintf("%6.0f%s", r.Sampled, mark(r.Sampled))
		}
		fmt.Printf("%02d:%02d  %6.0f%s  %s  %6.0f%s   %s\n",
			r.MinuteOfDay/60, r.MinuteOfDay%60,
			r.Clinical, mark(r.Clinical),
			sampled,
			r.Anytime, mark(r.Anytime),
			bar(r.Anytime))
	}

	fmt.Println()
	fmt.Printf("input sampling processed %d/%d readings and %s\n",
		res.SampledProcessed, len(res.Readings),
		tern(res.SampledMissedDip, "MISSED a hypoglycemic dip", "caught every dip"))
	fmt.Printf("anytime processing covered every reading (avg error %.1f%%) and %s\n",
		res.AnytimeAvgErrPct,
		tern(res.AnytimeCaughtAll, "caught BOTH dips", "missed a dip"))
}

func bar(v float64) string {
	n := int(v / 8)
	if n < 0 {
		n = 0
	}
	if n > 30 {
		n = 30
	}
	return strings.Repeat("#", n)
}

func tern(c bool, a, b string) string {
	if c {
		return a
	}
	return b
}
