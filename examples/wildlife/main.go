// Wildlife: a solar-harvesting tracking collar (the paper's NetMotion
// scenario) streaming movement summaries. Position deltas arrive
// continuously; each summary window must be reported before the next one
// lands. The conventional build falls behind and drops windows; the WN
// build commits an approximate summary at each outage and keeps up.
//
//	go run ./examples/wildlife
package main

import (
	"fmt"
	"log"

	"whatsnext/internal/compiler"
	"whatsnext/internal/core"
	"whatsnext/internal/energy"
	"whatsnext/internal/quality"
	"whatsnext/internal/workloads"
)

func main() {
	b := workloads.NetMotion()
	p := workloads.Params{Steps: 4096}

	precise, err := compiler.Compile(b.Build(p, 8, true), compiler.Options{Mode: compiler.ModePrecise})
	if err != nil {
		log.Fatal(err)
	}
	anytime, err := compiler.Compile(b.Build(p, 8, true), compiler.Options{Mode: compiler.ModeSWV})
	if err != nil {
		log.Fatal(err)
	}

	const windows = 12
	clk := energy.DefaultDeviceConfig().ClockHz

	run := func(name string, c *compiler.Compiled) {
		sys := core.NewSystem(core.DefaultConfig(), energy.SyntheticWiFiTrace(11, energy.DefaultTraceConfig()))
		if err := sys.Load(c); err != nil {
			log.Fatal(err)
		}
		// A new summary window of deltas lands every 250 ms of wall clock.
		deadline := uint64(0.25 * clk)

		var done, dropped int
		var errs []float64
		start := sys.Supply.TotalCycles()
		for w := 0; w < windows; w++ {
			in := b.Inputs(p, int64(100+w))
			golden := b.Golden(p, in)
			res, err := sys.RunInput(in)
			if err != nil {
				log.Fatal(err)
			}
			out, err := sys.Output(b.Output)
			if err != nil {
				log.Fatal(err)
			}
			done++
			errs = append(errs, quality.NRMSE(out, golden))
			// Windows that arrived while we were still busy are lost.
			busy := res.TotalCycles()
			for busy > deadline {
				busy -= deadline
				dropped++
				w++
			}
		}
		elapsed := float64(sys.Supply.TotalCycles()-start) / clk
		fmt.Printf("%-22s summaries reported: %2d   dropped: %2d   median NRMSE: %.3f%%   (%.1f s simulated)\n",
			name, done, dropped, quality.Median(errs), elapsed)
	}

	fmt.Printf("wildlife tracker: %d-step windows, harvested Wi-Fi power, Clank checkpointing\n", p.Steps)
	run("conventional precise:", precise)
	run("What's Next (8-bit):", anytime)
	fmt.Println("\nWN commits each window's net-movement estimate at the first outage past a skim point,")
	fmt.Println("so it reports more summaries before their replacement windows arrive.")
}
