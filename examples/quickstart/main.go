// Quickstart: build a tiny anytime kernel from source IR, compile it with
// the What's Next compiler, run it on a simulated energy-harvesting device,
// and watch skim points commit an approximate result when power dies.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"whatsnext/internal/compiler"
	"whatsnext/internal/core"
	"whatsnext/internal/energy"
	"whatsnext/internal/quality"
)

func main() {
	// The paper's Listing 1: X[i] += A[i] * F[i], with A annotated
	//   #pragma asp input(A, 8)
	//   #pragma asp output(X)
	const n = 512
	kernel := &compiler.Kernel{
		Name: "listing1",
		Arrays: []compiler.Array{
			{Name: "A", ElemBits: 16, Len: n, Pragma: compiler.PragmaASP, SubwordBits: 8},
			{Name: "F", ElemBits: 16, Len: n},
			{Name: "X", ElemBits: 32, Len: n, Output: true},
		},
		Body: []compiler.Stmt{
			compiler.Loop{Var: "i", N: n, Body: []compiler.Stmt{
				compiler.Assign{
					Array: "X", Index: compiler.LinVar("i", 1, 0), Accumulate: true,
					Value: compiler.Bin{Op: compiler.OpMul,
						A: compiler.Load{Array: "F", Index: compiler.LinVar("i", 1, 0)},
						B: compiler.Load{Array: "A", Index: compiler.LinVar("i", 1, 0)},
					},
				},
			}},
		},
	}

	// Compile both the conventional build and the anytime 8-bit SWP build.
	precise, err := compiler.Compile(kernel, compiler.Options{Mode: compiler.ModePrecise})
	if err != nil {
		log.Fatal(err)
	}
	anytime, err := compiler.Compile(kernel, compiler.Options{Mode: compiler.ModeSWP})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("precise build: %d instructions; anytime build: %d instructions (2 subword passes + skim points)\n",
		len(precise.Program.Image)/4, len(anytime.Program.Image)/4)

	// Inputs: A gets full 16-bit values, F small coefficients.
	a := make([]int64, n)
	f := make([]int64, n)
	golden := make([]float64, n)
	for i := range a {
		a[i] = int64((i * 2654435761) % 65536)
		f[i] = int64(1 + i%127)
		golden[i] = float64(uint32(a[i]) * uint32(f[i]))
	}
	inputs := map[string][]int64{"A": a, "F": f}

	// Run on a harvested supply with a Clank-style checkpointing runtime.
	sys := core.NewSystem(core.DefaultConfig(), energy.SyntheticWiFiTrace(42, energy.DefaultTraceConfig()))
	if err := sys.Load(anytime); err != nil {
		log.Fatal(err)
	}
	res, err := sys.RunInput(inputs)
	if err != nil {
		log.Fatal(err)
	}
	out, err := sys.Output("X")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("anytime run: %d active cycles, %d outages, finished via skim: %v\n",
		res.CyclesOn, res.Outages, res.SkimTaken)
	fmt.Printf("output NRMSE vs exact: %.4f%%\n", quality.NRMSE(out, golden))

	if res.SkimTaken {
		fmt.Println("a power outage hit after the most significant pass: WN committed the approximate result as-is and moved on")
	} else {
		fmt.Println("power sufficed for all subword passes: the result is bit-exact")
	}
}
