// Imaging: an anytime image-processing pipeline in the spirit of the
// paper's Figures 2 and 16. A battery-free camera node Gaussian-filters a
// frame; we compare what the conventional build and the WN build can
// deliver at the same interrupted-energy budget, and write the images as
// PGM files.
//
//	go run ./examples/imaging [outdir]
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"whatsnext/internal/compiler"
	"whatsnext/internal/cpu"
	"whatsnext/internal/mem"
	"whatsnext/internal/quality"
	"whatsnext/internal/workloads"
)

func main() {
	outDir := "out"
	if len(os.Args) > 1 {
		outDir = os.Args[1]
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		log.Fatal(err)
	}

	b := workloads.Conv2d()
	p := b.ScaledParams()
	in := b.Inputs(p, 9)
	golden := b.Golden(p, in)

	precise, err := compiler.Compile(b.Build(p, 8, false), compiler.Options{Mode: compiler.ModePrecise})
	if err != nil {
		log.Fatal(err)
	}
	baseCycles := runBudget(precise, in, 0)
	fmt.Printf("precise filter: %d cycles for a %dx%d frame\n", baseCycles, p.ImgW, p.ImgH)

	write := func(name string, px []float64) {
		path := filepath.Join(outDir, name+".pgm")
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := quality.WritePGM(f, px, p.ImgW, p.ImgH); err != nil {
			log.Fatal(err)
		}
		fmt.Println("wrote", path)
	}
	write("imaging_exact", golden)

	// The energy budget a few harvest bursts would give: 60% of a frame.
	budget := baseCycles * 6 / 10

	// Conventional build at the budget: the frame is cut off mid-scan.
	m := runForImage(precise, in, budget)
	px, err := precise.Layout.OutputValues(m, b.Output)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("conventional at %d cycles: NRMSE %.2f%%\n", budget, quality.NRMSE(px, golden))
	write("imaging_conventional_cut", px)

	// WN builds at the same budget: complete frames, refining with bits.
	for _, bits := range []int{1, 2, 4, 8} {
		wn, err := compiler.Compile(b.Build(p, bits, false), compiler.Options{Mode: compiler.ModeSWP})
		if err != nil {
			log.Fatal(err)
		}
		m := runForImage(wn, in, budget)
		px, err := wn.Layout.OutputValues(m, b.Output)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("WN %d-bit at %d cycles:  NRMSE %.2f%%\n", bits, budget, quality.NRMSE(px, golden))
		write(fmt.Sprintf("imaging_wn_%dbit", bits), px)
	}
}

// runBudget executes the program until halt (budget 0) or the cycle budget
// and returns the cycles consumed.
func runBudget(c *compiler.Compiled, in map[string][]int64, budget uint64) uint64 {
	cp, _ := device(c, in)
	var cycles uint64
	for !cp.Halted {
		cost, err := cp.Step()
		if err != nil {
			log.Fatal(err)
		}
		cycles += uint64(cost.Cycles)
		if budget != 0 && cycles >= budget {
			break
		}
	}
	return cycles
}

// runForImage executes up to the budget and returns the memory for output
// extraction.
func runForImage(c *compiler.Compiled, in map[string][]int64, budget uint64) *mem.Memory {
	cp, m := device(c, in)
	var cycles uint64
	for !cp.Halted {
		cost, err := cp.Step()
		if err != nil {
			log.Fatal(err)
		}
		cycles += uint64(cost.Cycles)
		if cycles >= budget {
			break
		}
	}
	return m
}

func device(c *compiler.Compiled, in map[string][]int64) (*cpu.CPU, *mem.Memory) {
	m := mem.New(mem.DefaultConfig())
	if err := m.LoadProgram(c.Program.Image); err != nil {
		log.Fatal(err)
	}
	for name, vals := range in {
		if err := c.Layout.Install(m, name, vals); err != nil {
			log.Fatal(err)
		}
	}
	return cpu.New(m), m
}
