#!/usr/bin/env bash
# nn-smoke.sh: CI smoke test of the NN inference subsystem.
#
# 1. Emits a reduced NN conv kernel — plain and with the progress-embedding
#    lowering — and statically certifies both images with the crash analysis.
#    The embedded image's certificate must round-trip byte-stably.
# 2. Runs a strided power-failure injection campaign over the emitted NN
#    images through wnlint's injector.
# 3. Runs the accuracy-vs-energy study on 1 worker, 8 workers, and remotely
#    against a live wnserved instance; all three outputs must be
#    byte-identical (the sweep determinism contract).
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
server_pid=""
cleanup() {
    [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/wnsim" ./cmd/wnsim
go build -o "$workdir/wnlint" ./cmd/wnlint
go build -o "$workdir/wnbench" ./cmd/wnbench
go build -o "$workdir/wnserved" ./cmd/wnserved

echo "nn-smoke: emitting reduced NN conv images (plain precise, embedded swp p1)"
"$workdir/wnsim" -bench NNConv -mode precise -dump-asm >"$workdir/nnconv_plain.s"
"$workdir/wnsim" -bench NNConv -mode wn -bits 4 -embed -passes 1 -dump-asm >"$workdir/nnconv_embed.s"

echo "nn-smoke: certifying both images (-crash), embedded cert must round-trip"
"$workdir/wnlint" -crash "$workdir/nnconv_plain.s"
"$workdir/wnlint" -crash "$workdir/nnconv_embed.s"
"$workdir/wnlint" -crash -cert "$workdir/nnconv_embed.s" >"$workdir/cert-a.json"
"$workdir/wnlint" -crash -cert "$workdir/nnconv_embed.s" >"$workdir/cert-b.json"
cmp "$workdir/cert-a.json" "$workdir/cert-b.json"

echo "nn-smoke: strided fault injection over the emitted NN images"
"$workdir/wnlint" -crash -faults 16 "$workdir/nnconv_plain.s"
"$workdir/wnlint" -crash -faults 16 "$workdir/nnconv_embed.s"

echo "nn-smoke: accuracy-vs-energy study, 1 vs 8 workers must match"
"$workdir/wnbench" -exp nn -parallel 1 >"$workdir/nn-serial.txt"
"$workdir/wnbench" -exp nn -parallel 8 >"$workdir/nn-parallel.txt"
if ! diff -u "$workdir/nn-serial.txt" "$workdir/nn-parallel.txt"; then
    echo "nn-smoke: 1-worker and 8-worker study outputs differ"
    exit 1
fi

"$workdir/wnserved" -addr 127.0.0.1:0 -quiet >"$workdir/serve.out" 2>&1 &
server_pid=$!
deadline=$(($(date +%s) + 10))
url=""
while [ "$(date +%s)" -lt "$deadline" ]; do
    url=$(sed -n 's/^wnserved: listening on //p' "$workdir/serve.out")
    [ -n "$url" ] && break
    if ! kill -0 "$server_pid" 2>/dev/null; then
        echo "nn-smoke: wnserved exited before announcing its port" >&2
        cat "$workdir/serve.out" >&2
        exit 1
    fi
    sleep 0.1
done
if [ -z "$url" ]; then
    echo "nn-smoke: wnserved never announced its port within 10s" >&2
    cat "$workdir/serve.out" >&2
    exit 1
fi

echo "nn-smoke: remote study via $url must match the local run"
"$workdir/wnbench" -exp nn -remote "$url" >"$workdir/nn-remote.txt"
if ! diff -u "$workdir/nn-serial.txt" "$workdir/nn-remote.txt"; then
    echo "nn-smoke: remote study output differs from local run"
    exit 1
fi

echo "nn-smoke: OK"
