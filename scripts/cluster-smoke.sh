#!/usr/bin/env bash
# cluster-smoke.sh: end-to-end check of the distributed sweep cluster from
# outside the process. Boots two wnserved workers on ephemeral ports and a
# wncluster coordinator in front of them, runs the Table I sweep locally and
# through `wnbench -remote <coordinator>`, and demands byte-identical
# output; then kills one worker and reruns, requiring the ring to route
# around the corpse with — again — identical bytes; finally scrapes the
# per-node metrics and the /v1/cluster membership report.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
pids=()
cleanup() {
    for pid in "${pids[@]:-}"; do
        [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    done
    rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/wnserved" ./cmd/wnserved
go build -o "$workdir/wncluster" ./cmd/wncluster
go build -o "$workdir/wnbench" ./cmd/wnbench

# Deadline-based announcement wait: fail fast with the log if the process
# dies, instead of sleeping out the timeout against a corpse.
wait_for_url() { # pid logfile prefix -> echoes URL
    local pid=$1 logfile=$2 prefix=$3 deadline url
    deadline=$(($(date +%s) + 10))
    while [ "$(date +%s)" -lt "$deadline" ]; do
        url=$(sed -n "s/^${prefix}: listening on //p" "$logfile")
        if [ -n "$url" ]; then
            echo "$url"
            return 0
        fi
        if ! kill -0 "$pid" 2>/dev/null; then
            echo "cluster-smoke: $prefix exited before announcing its port" >&2
            cat "$logfile" >&2
            return 1
        fi
        sleep 0.1
    done
    echo "cluster-smoke: $prefix never announced its port within 10s" >&2
    cat "$logfile" >&2
    return 1
}

"$workdir/wnserved" -addr 127.0.0.1:0 -quiet >"$workdir/w1.out" 2>&1 &
w1_pid=$!; pids+=("$w1_pid")
"$workdir/wnserved" -addr 127.0.0.1:0 -quiet >"$workdir/w2.out" 2>&1 &
w2_pid=$!; pids+=("$w2_pid")
w1_url=$(wait_for_url "$w1_pid" "$workdir/w1.out" wnserved)
w2_url=$(wait_for_url "$w2_pid" "$workdir/w2.out" wnserved)
echo "cluster-smoke: workers at $w1_url $w2_url"

# Short hedge so the kill-one-worker rerun fails over quickly.
"$workdir/wncluster" -addr 127.0.0.1:0 -quiet -hedge 2s \
    -workers "$w1_url,$w2_url" >"$workdir/coord.out" 2>&1 &
coord_pid=$!; pids+=("$coord_pid")
coord_url=$(wait_for_url "$coord_pid" "$workdir/coord.out" wncluster)
echo "cluster-smoke: coordinator at $coord_url"

curl -sf "$coord_url/healthz" >/dev/null
curl -sf "$coord_url/readyz" >/dev/null
curl -sf "$coord_url/v1/cluster" >"$workdir/cluster.json"
[ "$(grep -o '"name"' "$workdir/cluster.json" | wc -l)" -eq 2 ] \
    || { echo "cluster-smoke: /v1/cluster does not report 2 nodes"; cat "$workdir/cluster.json"; exit 1; }

"$workdir/wnbench" -exp table1 >"$workdir/local.txt"
"$workdir/wnbench" -exp table1 -remote "$coord_url" >"$workdir/cluster1.txt"
if ! diff -u "$workdir/local.txt" "$workdir/cluster1.txt"; then
    echo "cluster-smoke: 2-worker cluster output differs from local run"
    exit 1
fi
echo "cluster-smoke: 2-worker Table I output is byte-identical to local"

# Both workers must have actually completed shards.
curl -sf "$coord_url/metrics" >"$workdir/metrics1.txt"
for url in "$w1_url" "$w2_url"; do
    grep -q "^wn_cluster_shards_completed_total{node=\"$url\"} [1-9]" "$workdir/metrics1.txt" \
        || { echo "cluster-smoke: node $url completed no shards"; cat "$workdir/metrics1.txt"; exit 1; }
done
echo "cluster-smoke: both nodes completed shards"

# Kill a worker; use a figure sweep (not yet in the coordinator cache) so
# the ring must genuinely re-dispatch onto the survivor — and still match
# the local bytes.
"$workdir/wnbench" -exp fig10 >"$workdir/local-fig10.txt"
kill "$w2_pid" 2>/dev/null
wait "$w2_pid" 2>/dev/null || true
echo "cluster-smoke: killed worker $w2_url"
"$workdir/wnbench" -exp fig10 -remote "$coord_url" >"$workdir/cluster-fig10.txt"
if ! diff -u "$workdir/local-fig10.txt" "$workdir/cluster-fig10.txt"; then
    echo "cluster-smoke: output after worker death differs from local run"
    exit 1
fi
echo "cluster-smoke: ring routed around the dead worker byte-identically"

curl -sf "$coord_url/metrics" >"$workdir/metrics2.txt"
grep -q "^wn_cluster_shards_failed_total{node=\"$w2_url\"} [1-9]" "$workdir/metrics2.txt" \
    || { echo "cluster-smoke: dead node shows no failed shards"; cat "$workdir/metrics2.txt"; exit 1; }
grep -q "^wn_cluster_jobs_done_total [1-9]" "$workdir/metrics2.txt" \
    || { echo "cluster-smoke: no completed jobs in metrics"; exit 1; }
echo "cluster-smoke: per-node metrics consistent"

kill -TERM "$coord_pid"
for _ in $(seq 1 100); do
    kill -0 "$coord_pid" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$coord_pid" 2>/dev/null; then
    echo "cluster-smoke: coordinator did not drain within 10s of SIGTERM"
    exit 1
fi
grep -q 'wncluster: bye' "$workdir/coord.out" \
    || { echo "cluster-smoke: missing clean-shutdown marker"; cat "$workdir/coord.out"; exit 1; }
echo "cluster-smoke: graceful drain OK"
