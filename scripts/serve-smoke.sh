#!/usr/bin/env bash
# serve-smoke.sh: end-to-end check of the simulation service from outside
# the process. Starts wnserved on an ephemeral port, runs the Table I sweep
# both locally and through `wnbench -remote`, and demands byte-identical
# output; then pokes the health/metrics endpoints and verifies the daemon
# drains cleanly on SIGTERM.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
server_pid=""
cleanup() {
    [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/wnserved" ./cmd/wnserved
go build -o "$workdir/wnbench" ./cmd/wnbench

"$workdir/wnserved" -addr 127.0.0.1:0 -quiet >"$workdir/serve.out" 2>&1 &
server_pid=$!

# Wait for the port announcement against a wall-clock deadline, failing
# fast — with the server log — the moment the process dies instead of
# polling out the full timeout against a corpse.
wait_for_url() { # pid logfile prefix -> echoes URL
    local pid=$1 logfile=$2 prefix=$3 deadline url
    deadline=$(($(date +%s) + 10))
    while [ "$(date +%s)" -lt "$deadline" ]; do
        url=$(sed -n "s/^${prefix}: listening on //p" "$logfile")
        if [ -n "$url" ]; then
            echo "$url"
            return 0
        fi
        if ! kill -0 "$pid" 2>/dev/null; then
            echo "smoke: $prefix exited before announcing its port" >&2
            cat "$logfile" >&2
            return 1
        fi
        sleep 0.1
    done
    echo "smoke: $prefix never announced its port within 10s" >&2
    cat "$logfile" >&2
    return 1
}

url=$(wait_for_url "$server_pid" "$workdir/serve.out" wnserved)
echo "serve-smoke: server at $url"

curl -sf "$url/healthz" >/dev/null
curl -sf "$url/readyz" >/dev/null

"$workdir/wnbench" -exp table1 >"$workdir/local.txt"
"$workdir/wnbench" -exp table1 -remote "$url" >"$workdir/remote.txt"
if ! diff -u "$workdir/local.txt" "$workdir/remote.txt"; then
    echo "serve-smoke: remote Table I output differs from local run"
    exit 1
fi
echo "serve-smoke: remote Table I output is byte-identical to local"

# A second remote run must be served from cache and still match.
"$workdir/wnbench" -exp table1 -remote "$url" >"$workdir/remote2.txt"
diff -u "$workdir/local.txt" "$workdir/remote2.txt" >/dev/null
curl -sf "$url/metrics" | grep -q '^wn_sweep_cache_hits_total [1-9]' \
    || { echo "serve-smoke: rerun did not hit the result cache"; exit 1; }
curl -sf "$url/metrics" | grep -q '^wn_serve_jobs_done_total 2$' \
    || { echo "serve-smoke: expected 2 completed jobs in metrics"; exit 1; }
echo "serve-smoke: cached rerun matched; metrics consistent"

kill -TERM "$server_pid"
for _ in $(seq 1 100); do
    kill -0 "$server_pid" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$server_pid" 2>/dev/null; then
    echo "serve-smoke: server did not drain within 10s of SIGTERM"
    exit 1
fi
server_pid=""
grep -q 'wnserved: bye' "$workdir/serve.out" \
    || { echo "serve-smoke: missing clean-shutdown marker"; cat "$workdir/serve.out"; exit 1; }
echo "serve-smoke: graceful drain OK"
