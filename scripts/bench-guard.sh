#!/usr/bin/env bash
# bench-guard.sh — fail when the end-to-end Table I benchmark regresses
# against the committed reference summary.
#
# Usage: scripts/bench-guard.sh [BASELINE_JSON]
#
# Runs BenchmarkTableI several times, takes the fastest run (the least-noise
# estimator on shared runners), and compares it against ns_per_op recorded in
# the baseline summary (default BENCH_PR8.json). Exits non-zero when the
# measurement is more than BENCH_TOLERANCE_PCT percent slower (default 10).
#
# The committed baseline was measured on the machine class named in the
# summary; when gating on a different machine class, re-record the baseline
# there or widen BENCH_TOLERANCE_PCT rather than comparing absolute ns/op
# across hardware.
set -euo pipefail
cd "$(dirname "$0")/.."

baseline_file="${1:-BENCH_PR8.json}"
tolerance_pct="${BENCH_TOLERANCE_PCT:-10}"
count="${BENCH_GUARD_COUNT:-3}"

if [[ ! -f "$baseline_file" ]]; then
    echo "bench-guard: baseline $baseline_file not found" >&2
    exit 1
fi

baseline_ns=$(awk '/"BenchmarkTableI"/{f=1} f && /"ns_per_op"/{gsub(/[^0-9.]/,""); print; exit}' "$baseline_file")
if [[ -z "$baseline_ns" ]]; then
    echo "bench-guard: no BenchmarkTableI ns_per_op in $baseline_file" >&2
    exit 1
fi

echo "bench-guard: baseline BenchmarkTableI ${baseline_ns} ns/op (${baseline_file}), tolerance ${tolerance_pct}%"

best_ns=$(go test -run '^$' -bench 'BenchmarkTableI$' -benchtime 20x -count "$count" . |
    awk '/^BenchmarkTableI/{print $3}' | sort -n | head -1)
if [[ -z "$best_ns" ]]; then
    echo "bench-guard: benchmark produced no BenchmarkTableI line" >&2
    exit 1
fi

echo "bench-guard: measured  BenchmarkTableI ${best_ns} ns/op (best of ${count})"

awk -v best="$best_ns" -v base="$baseline_ns" -v tol="$tolerance_pct" 'BEGIN {
    limit = base * (1 + tol / 100)
    ratio = best / base
    if (best > limit) {
        printf "bench-guard: FAIL — %.0f ns/op exceeds %.0f ns/op (%.1f%% over baseline, tolerance %s%%)\n",
            best, limit, (ratio - 1) * 100, tol
        exit 1
    }
    printf "bench-guard: OK — %.2fx of baseline (limit %.0f ns/op)\n", ratio, limit
}'
