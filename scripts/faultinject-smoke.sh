#!/usr/bin/env bash
# faultinject-smoke.sh: CI smoke test of the crash-consistency contract.
#
# 1. Statically certifies every shipped WN program with the crash analysis
#    (-crash) — any WN10x error fails the build. The seeded-hazard programs
#    under internal/wncheck/testdata and internal/faultinject/testdata are
#    excluded: their violations are the test corpus.
# 2. Confirms the seeded-hazard corpus still IS flagged and that the
#    injector witnesses each flag dynamically (-faults).
# 3. Runs stride-sampled power-failure injection over two Table I kernels
#    under both the Clank and NVP runtimes; wnbench exits non-zero on any
#    divergence from the uninterrupted golden run.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "faultinject-smoke: certifying shipped programs (-crash)"
# shellcheck disable=SC2046
go run ./cmd/wnlint -crash $(git ls-files '*.s' ':!internal/wncheck/testdata/' ':!internal/faultinject/testdata/')

echo "faultinject-smoke: seeded hazards must be flagged AND witnessed"
for f in internal/faultinject/testdata/*.s; do
    if go run ./cmd/wnlint -crash -faults 24 "$f" >/dev/null 2>&1; then
        echo "faultinject-smoke: $f was expected to fail the crash checks"
        exit 1
    fi
done

echo "faultinject-smoke: strided injection over Conv2d + Home (clank, nvp)"
go run ./cmd/wnbench -exp faults -faultbench Conv2d,Home -faultpoints 8

echo "faultinject-smoke: OK"
