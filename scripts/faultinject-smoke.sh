#!/usr/bin/env bash
# faultinject-smoke.sh: CI smoke test of the crash-consistency contract.
#
# 1. Statically certifies every shipped WN program with the crash analysis
#    (-crash) — any WN10x error fails the build. The seeded-hazard programs
#    under internal/wncheck/testdata and internal/faultinject/testdata are
#    excluded: their violations are the test corpus.
# 2. Confirms the seeded-hazard corpus still IS flagged and that the
#    injector witnesses each flag dynamically (-faults).
# 3. Runs stride-sampled power-failure injection over two Table I kernels
#    under both the Clank and NVP runtimes; wnbench exits non-zero on any
#    divergence from the uninterrupted golden run.
# 4. Runs the forward-progress study: every kernel's certified per-region
#    WCEC must cover the measured worst inter-commit gap (the study exits
#    non-zero on any dynamic gap above its static bound).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "faultinject-smoke: certifying shipped programs (-crash -wcec)"
# shellcheck disable=SC2046
go run ./cmd/wnlint -crash -wcec $(git ls-files '*.s' ':!internal/wncheck/testdata/' ':!internal/faultinject/testdata/')

echo "faultinject-smoke: seeded hazards must be flagged AND witnessed"
# repeated_input.s needs its input location declared: WN105 checks the
# program against a world model, and without -input the rule is vacuous
# (the single-world injector cannot see the hazard either — only the
# multi-world CrossValidate oracle in the Go tests witnesses it).
for f in internal/faultinject/testdata/*.s; do
    flags=(-crash -faults 24)
    case "$f" in
        */repeated_input.s) flags=(-crash -input 0x10000000:0x10000004) ;;
        # livelock.s never halts, so injection's golden run would spin
        # forever; its flag is WN201 (-wcec) and its dynamic witness is the
        # cycle-budget test in internal/faultinject.
        */livelock.s) flags=(-wcec) ;;
    esac
    if go run ./cmd/wnlint "${flags[@]}" "$f" >/dev/null 2>&1; then
        echo "faultinject-smoke: $f was expected to fail the crash checks"
        exit 1
    fi
done

echo "faultinject-smoke: certificates must round-trip byte-stably"
go run ./cmd/wnlint -crash -wcec -cert internal/asm/testdata/dotprod.s > /tmp/wn-cert-a.json 2>/dev/null
go run ./cmd/wnlint -crash -wcec -cert internal/asm/testdata/dotprod.s > /tmp/wn-cert-b.json 2>/dev/null
cmp /tmp/wn-cert-a.json /tmp/wn-cert-b.json

echo "faultinject-smoke: strided injection over Conv2d + Home (clank, nvp)"
go run ./cmd/wnbench -exp faults -faultbench Conv2d,Home -faultpoints 8

echo "faultinject-smoke: static region bounds must cover measured commit gaps"
go run ./cmd/wnbench -exp progress

echo "faultinject-smoke: OK"
