// Benchmarks regenerating every table and figure of the paper's evaluation
// (one Benchmark per exhibit). Custom metrics attach the headline numbers —
// speedups, NRMSE — to the benchmark output; `go run ./cmd/wnbench` prints
// the full rows and series.
//
//	go test -bench=. -benchmem
package whatsnext_test

import (
	"testing"

	"whatsnext/internal/core"
	"whatsnext/internal/energy"
	"whatsnext/internal/experiments"
	"whatsnext/internal/synthmodel"
)

func proto() experiments.Protocol { return experiments.DefaultProtocol() }

// BenchmarkTableI measures the benchmark characteristics table: dynamic
// WN-amenable instruction share and precise runtime per kernel.
func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(proto())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var amen float64
			for _, r := range rows {
				amen += r.AmenablePct
			}
			b.ReportMetric(amen/float64(len(rows)), "avg_amenable_%")
		}
	}
}

// BenchmarkFigure2 regenerates the Conv2d budgeted-output comparison.
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure2(proto(), "")
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.BaselineNRMSE, "baseline_nrmse_%")
			b.ReportMetric(r.WNNRMSE, "wn_nrmse_%")
		}
	}
}

// BenchmarkFigure3 regenerates the glucose sampling-vs-anytime study.
func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure3(7)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.AnytimeAvgErrPct, "anytime_err_%")
			b.ReportMetric(float64(r.SampledProcessed), "sampled_readings")
		}
	}
}

// BenchmarkFigure9 regenerates the twelve runtime-quality curves.
func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		curves, err := experiments.Figure9(proto(), 60)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var over float64
			for _, c := range curves {
				over += c.FinalOverhead()
			}
			b.ReportMetric(over/float64(len(curves)), "avg_final_overhead_x")
		}
	}
}

// BenchmarkFigure10 regenerates the checkpointing-volatile-processor
// speedup study (paper averages: 1.78x at 8-bit, 3.02x at 4-bit).
func BenchmarkFigure10(b *testing.B) {
	benchSpeedup(b, core.ProcClank)
}

// BenchmarkFigure11 regenerates the non-volatile-processor speedup study
// (paper averages: 1.41x at 8-bit, 2.26x at 4-bit).
func BenchmarkFigure11(b *testing.B) {
	benchSpeedup(b, core.ProcNVP)
}

func benchSpeedup(b *testing.B, proc core.Processor) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.SpeedupStudy(proc, proto())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			s8, e8 := experiments.SpeedupSummary(rows, 8)
			s4, e4 := experiments.SpeedupSummary(rows, 4)
			b.ReportMetric(s8, "speedup8_x")
			b.ReportMetric(s4, "speedup4_x")
			b.ReportMetric(e8, "nrmse8_%")
			b.ReportMetric(e4, "nrmse4_%")
		}
	}
}

// BenchmarkFigure12 regenerates the SWP+vectorized-loads study.
func BenchmarkFigure12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure12(proto())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				if r.Bits == 4 {
					b.ReportMetric(r.EarlierBy, "earlier4_x")
				} else if r.Bits == 8 {
					b.ReportMetric(r.EarlierBy, "earlier8_x")
				}
			}
		}
	}
}

// BenchmarkFigure13 regenerates the memoization + zero-skipping study.
func BenchmarkFigure13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure13(proto())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				switch r.Config {
				case "precise":
					b.ReportMetric(r.WithTable, "precise_memo_x")
				case "4-bit":
					b.ReportMetric(r.WithTable, "swp4_memo_x")
				}
			}
		}
	}
}

// BenchmarkFigure14 regenerates the provisioned-vs-unprovisioned study.
func BenchmarkFigure14(b *testing.B) {
	for i := 0; i < b.N; i++ {
		prov, unprov, err := experiments.Figure14(proto(), 60)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(prov.Points[len(prov.Points)-1].NRMSE, "prov_final_%")
			b.ReportMetric(unprov.Points[len(unprov.Points)-1].NRMSE, "unprov_final_%")
		}
	}
}

// BenchmarkFigure15 regenerates the small-subword sweep.
func BenchmarkFigure15(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure15(proto())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(rows[0].Speedup, "speedup_1bit_x")
		}
	}
}

// BenchmarkFigure16 regenerates the small-subword visual outputs.
func BenchmarkFigure16(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure16(proto(), "")
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && len(r.Rows) > 0 {
			b.ReportMetric(r.Rows[0].NRMSE, "nrmse_1bit_%")
		}
	}
}

// BenchmarkFigure17 regenerates the Var stream comparison.
func BenchmarkFigure17(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, avg, err := experiments.Figure17(proto())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(avg, "wn_avg_err_%")
		}
	}
}

// BenchmarkFigure1 runs the streaming forward-progress scenario of the
// paper's Figure 1: conventional processing drops inputs; WN keeps up.
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.StreamStudy(proto(), 12)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var preciseDropped, wnDropped int
			for _, r := range rows {
				if r.Config == "precise" {
					preciseDropped += r.Dropped
				} else {
					wnDropped += r.Dropped
				}
			}
			b.ReportMetric(float64(preciseDropped), "precise_dropped")
			b.ReportMetric(float64(wnDropped), "wn_dropped")
		}
	}
}

// BenchmarkAblations runs the extension studies: skim-point isolation,
// watchdog and capacitor sweeps, and the memo-capacity sweep.
func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.SkimAblation(proto())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := experiments.WatchdogSweep(proto(), []uint64{1024, 8192}); err != nil {
			b.Fatal(err)
		}
		if _, err := experiments.CapacitorSweep(proto(), []float64{10, 47}); err != nil {
			b.Fatal(err)
		}
		memo, err := experiments.MemoEntriesSweep(proto(), []int{16, 256})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var with, without float64
			for _, r := range rows {
				with += r.WithSkim
				without += r.WithoutSkim
			}
			b.ReportMetric(with/float64(len(rows)), "avg_with_skim_x")
			b.ReportMetric(without/float64(len(rows)), "avg_without_skim_x")
			b.ReportMetric(memo[0].HitRate*100, "memo16_hit_%")
		}
	}
}

// BenchmarkEnvironments sweeps the harvest-source extension study.
func BenchmarkEnvironments(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.EnvironmentStudy(proto())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				if r.Source == energy.SourceWiFi {
					b.ReportMetric(r.Speedup, "wifi_speedup_x")
				}
			}
		}
	}
}

// BenchmarkAreaPower evaluates the Section V-D analytical model.
func BenchmarkAreaPower(b *testing.B) {
	clock := energy.DefaultDeviceConfig().ClockHz
	var r synthmodel.Report
	for i := 0; i < b.N; i++ {
		r = synthmodel.Evaluate(clock)
	}
	b.ReportMetric(r.AdderAreaOverheadPct, "adder_area_%")
	b.ReportMetric(r.AdderPowerPct, "adder_power_%")
	b.ReportMetric(r.MemoVsMultiplierPct, "memo_vs_mult_%")
}
