module whatsnext

go 1.22
